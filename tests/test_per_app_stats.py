"""Tests for the per-application statistics breakdown."""

import numpy as np
import pytest

from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, aa_dedupe_config
from repro.core.stats import SessionStats
from repro.trace import TraceBackupClient
from repro.util.units import MB
from repro.workloads import WorkloadGenerator, snapshot_to_memory_source


class TestSessionStatsApi:
    def test_note_app_accumulates(self):
        stats = SessionStats(session_id=0, scheme="x")
        stats.note_app("mp3", 100, 100)
        stats.note_app("mp3", 50, 0)
        assert stats.app_scanned["mp3"] == 150
        assert stats.app_unique["mp3"] == 100
        assert stats.app_dedup_ratio("mp3") == pytest.approx(1.5)

    def test_ratio_edge_cases(self):
        stats = SessionStats(session_id=0, scheme="x")
        assert stats.app_dedup_ratio("ghost") == 1.0
        stats.note_app("doc", 100, 0)
        assert stats.app_dedup_ratio("doc") == float("inf")


class TestEngineBreakdown:
    @pytest.fixture()
    def dataset(self, rng):
        def blob(n):
            return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

        dup = blob(30_000)
        return {
            "m/a.mp3": dup,
            "m/b.mp3": dup,           # whole-file duplicate
            "d/c.doc": blob(25_000),
            "v/d.vmdk": blob(40_000),
        }

    def test_per_app_sums_match_totals(self, dataset):
        client = BackupClient(InMemoryBackend(), aa_dedupe_config())
        stats = client.backup(MemorySource(dataset))
        assert sum(stats.app_scanned.values()) == stats.bytes_scanned
        assert sum(stats.app_unique.values()) == stats.bytes_unique

    def test_duplicate_attributed_to_right_app(self, dataset):
        client = BackupClient(InMemoryBackend(), aa_dedupe_config())
        stats = client.backup(MemorySource(dataset))
        assert stats.app_scanned["mp3"] == 60_000
        assert stats.app_unique["mp3"] == 30_000
        assert stats.app_dedup_ratio("mp3") == pytest.approx(2.0)
        # Unrelated apps saw no dedup in session 1.
        assert stats.app_dedup_ratio("vmdk") == pytest.approx(1.0)

    def test_engines_agree_per_app(self):
        generator = WorkloadGenerator(total_bytes=12 * MB, seed=14,
                                      max_mean_file_size=1 * MB)
        snapshot = generator.initial_snapshot()
        trace = TraceBackupClient(aa_dedupe_config()).backup(snapshot)
        real = BackupClient(InMemoryBackend(), aa_dedupe_config()).backup(
            snapshot_to_memory_source(snapshot))
        assert trace.app_scanned == real.app_scanned
        for app in trace.app_unique:
            assert trace.app_unique[app] == pytest.approx(
                real.app_unique[app], rel=0.15)
