"""Tests for the container format and the open-container manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import (
    ChunkDescriptor,
    ContainerManager,
    ContainerReader,
    ContainerWriter,
)
from repro.container.format import FLAG_TINY_FILE, _HEADER, _FOOTER
from repro.errors import ContainerError, ContainerFormatError
from repro.util.units import KIB, MIB


def fp(tag: bytes) -> bytes:
    return tag.ljust(20, b"\x7f")


class TestContainerFormat:
    def test_roundtrip(self):
        w = ContainerWriter(container_id=3, capacity=64 * KIB)
        w.append(fp(b"a"), b"alpha-data")
        w.append(fp(b"b"), b"beta-data", flags=FLAG_TINY_FILE)
        blob = w.seal()
        assert len(blob) == 64 * KIB  # padded
        r = ContainerReader(blob)
        assert r.container_id == 3
        assert r.get(fp(b"a")) == b"alpha-data"
        assert r.get(fp(b"b")) == b"beta-data"
        assert r.descriptors[1].flags == FLAG_TINY_FILE

    def test_unpadded_seal(self):
        w = ContainerWriter(1, capacity=64 * KIB)
        w.append(fp(b"x"), b"tiny")
        blob = w.seal(pad_to_capacity=False)
        assert len(blob) < 1024
        assert ContainerReader(blob).get(fp(b"x")) == b"tiny"

    def test_missing_fingerprint(self):
        w = ContainerWriter(1, capacity=8 * KIB)
        w.append(fp(b"x"), b"data")
        assert ContainerReader(w.seal()).get(fp(b"nope")) is None

    def test_read_at(self):
        w = ContainerWriter(1, capacity=8 * KIB)
        off = w.append(fp(b"x"), b"0123456789")
        r = ContainerReader(w.seal())
        assert r.read_at(off + 2, 3) == b"234"
        with pytest.raises(ContainerFormatError):
            r.read_at(5, 100)

    def test_corruption_detected(self):
        w = ContainerWriter(1, capacity=8 * KIB)
        w.append(fp(b"x"), b"payload-bytes")
        blob = bytearray(w.seal())
        blob[_HEADER.size + 2] ^= 0xFF  # flip a payload bit
        with pytest.raises(ContainerFormatError):
            ContainerReader(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(ContainerFormatError):
            ContainerReader(b"NOTMAGIC" + b"\0" * 100)

    def test_too_small(self):
        with pytest.raises(ContainerFormatError):
            ContainerReader(b"\0" * 8)

    def test_overflow_rejected(self):
        w = ContainerWriter(1, capacity=4 * KIB)
        with pytest.raises(ContainerFormatError):
            w.append(fp(b"x"), b"z" * (8 * KIB))

    def test_fits_accounts_for_descriptor(self):
        w = ContainerWriter(1, capacity=4 * KIB)
        payload = 4 * KIB - _HEADER.size - _FOOTER.size - 100
        assert w.fits(payload)
        assert not w.fits(4 * KIB)

    def test_descriptor_roundtrip(self):
        d = ChunkDescriptor(fp(b"q")[:12], offset=77, length=5, flags=1)
        assert ChunkDescriptor.unpack(d.pack()) == d

    @given(st.lists(st.binary(min_size=1, max_size=500), min_size=1,
                    max_size=20))
    @settings(max_examples=25)
    def test_property_roundtrip_many_chunks(self, payloads):
        w = ContainerWriter(9, capacity=1 * MIB)
        fps = []
        for i, payload in enumerate(payloads):
            key = fp(str(i).encode())
            fps.append((key, payload))
            w.append(key, payload)
        r = ContainerReader(w.seal())
        # Last writer wins for duplicate fingerprints within a container;
        # distinct indices here so all must match.
        for key, payload in fps:
            assert r.get(key) == payload


class TestContainerManager:
    def _manager(self, size=16 * KIB, **kw):
        uploads = {}

        def upload(cid, blob):
            uploads[cid] = blob

        return ContainerManager(upload, container_size=size, **kw), uploads

    def test_location_is_immediately_valid(self):
        mgr, uploads = self._manager()
        loc = mgr.add(fp(b"a"), b"hello")
        mgr.flush()
        reader = ContainerReader(uploads[loc.container_id])
        assert reader.read_at(loc.offset, loc.length) == b"hello"

    def test_fill_seals_and_opens_new(self):
        mgr, uploads = self._manager(size=8 * KIB)
        locs = [mgr.add(fp(str(i).encode()), bytes(2 * KIB))
                for i in range(8)]
        mgr.flush()
        assert len(uploads) >= 2
        cids = {loc.container_id for loc in locs}
        assert cids == set(uploads)

    def test_padding_on_flush(self):
        mgr, uploads = self._manager(size=8 * KIB)
        mgr.add(fp(b"a"), b"small")
        mgr.flush()
        (blob,) = uploads.values()
        assert len(blob) == 8 * KIB
        assert mgr.stats.bytes_padding > 0

    def test_no_padding_option(self):
        mgr, uploads = self._manager(size=8 * KIB, pad_containers=False)
        mgr.add(fp(b"a"), b"small")
        mgr.flush()
        (blob,) = uploads.values()
        assert len(blob) < 8 * KIB

    def test_oversized_chunk_dedicated_container(self):
        mgr, uploads = self._manager(size=8 * KIB)
        big = bytes(64 * KIB)
        loc = mgr.add(fp(b"big"), big)
        assert mgr.stats.oversized == 1
        reader = ContainerReader(uploads[loc.container_id])
        assert reader.read_at(loc.offset, loc.length) == big

    def test_streams_are_separate(self):
        mgr, uploads = self._manager()
        a = mgr.add(fp(b"a"), b"one", stream="s1")
        b = mgr.add(fp(b"b"), b"two", stream="s2")
        assert a.container_id != b.container_id
        assert set(mgr.open_streams()) == {"s1", "s2"}
        mgr.flush("s1")
        assert mgr.open_streams() == ["s2"]
        mgr.flush()
        assert len(uploads) == 2

    def test_tiny_file_counted(self):
        mgr, _ = self._manager()
        mgr.add(fp(b"t"), b"tiny!", tiny_file=True)
        assert mgr.stats.tiny_files_packed == 1

    def test_empty_flush_noop(self):
        mgr, uploads = self._manager()
        mgr.flush()
        assert uploads == {}
        assert mgr.stats.sealed == 0

    def test_chunk_locality_preserved(self):
        # Chunks appear in the container in arrival order.
        mgr, uploads = self._manager()
        order = [fp(str(i).encode()) for i in range(5)]
        for key in order:
            mgr.add(key, b"x" * 100)
        mgr.flush()
        (blob,) = uploads.values()
        reader = ContainerReader(blob)
        assert [d.fingerprint for d in reader.descriptors] == order

    def test_container_size_validation(self):
        with pytest.raises(ContainerError):
            ContainerManager(lambda c, b: None, container_size=100)

    def test_upload_bytes_accounting(self):
        mgr, uploads = self._manager(size=8 * KIB)
        mgr.add(fp(b"a"), bytes(3 * KIB))
        mgr.flush()
        assert mgr.stats.bytes_uploaded == sum(len(b)
                                               for b in uploads.values())
        assert mgr.stats.bytes_payload == 3 * KIB
