"""Tests for figure export and the simulated-cloud/engine integration."""

import json

import numpy as np
import pytest

from repro.analysis.export import figure_csv, figures_to_json, write_figures
from repro.analysis.figures import paper_figures_7_to_11
from repro.cloud import InMemoryBackend, SimulatedCloud, WANLink
from repro.core import BackupClient, MemorySource, RestoreClient, aa_dedupe_config
from repro.simulate import VirtualClock
from repro.trace import run_paper_evaluation
from repro.util.units import KIB


@pytest.fixture(scope="module")
def figures():
    result = run_paper_evaluation(scale=0.001, sessions=3)
    return paper_figures_7_to_11(result=result)


class TestFigureExport:
    def test_json_document_complete(self, figures):
        doc = figures_to_json(figures)
        assert set(doc["schemes"]) == set(
            doc["fig7_cumulative_storage_bytes"])
        assert len(doc["session_bytes"]) == 3
        for scheme in doc["schemes"]:
            assert len(doc["fig9_backup_window_seconds"][scheme]) == 3
            assert doc["fig10_monthly_cost_usd"][scheme]["total"] > 0
        json.dumps(doc)  # must be serialisable

    def test_csv_rendering(self, figures):
        text = figure_csv(figures.fig8_efficiency)
        lines = text.strip().splitlines()
        assert lines[0].startswith("session,")
        assert len(lines) == 4  # header + 3 sessions

    def test_write_files(self, figures, tmp_path):
        written = write_figures(figures, tmp_path / "out")
        assert len(written) == 6
        doc = json.loads((tmp_path / "out" / "figures.json").read_text())
        assert "fig11_dedup_energy_joules" in doc
        csv_text = (tmp_path / "out" / "fig7_cumulative_storage.csv"
                    ).read_text()
        assert "AA-Dedupe" in csv_text


class TestSimulatedCloudIntegration:
    """The real engine running against the timed/billed cloud facade."""

    def test_backup_accrues_virtual_time_and_bill(self, rng):
        files = {
            "a.doc": rng.integers(0, 256, 30_000,
                                  dtype=np.uint8).tobytes(),
            "b.mp3": rng.integers(0, 256, 40_000,
                                  dtype=np.uint8).tobytes(),
        }
        clock = VirtualClock()
        cloud = SimulatedCloud(InMemoryBackend(), clock=clock,
                               wan=WANLink(concurrent_requests=1))
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB))
        stats = client.backup(MemorySource(files))

        # Virtual WAN time advanced in step with uploaded bytes (plus
        # the container-id LIST the client issues at construction).
        assert cloud.upload_seconds <= clock.now() <= \
            cloud.upload_seconds + 0.2
        expected = (stats.bytes_uploaded / 500_000
                    + stats.put_requests * 0.08)
        # resume_from_cloud's LIST also advances the clock slightly.
        assert cloud.upload_seconds >= expected * 0.99
        assert cloud.bill() > 0

        # Restore works through the same facade and accrues download time.
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files
        assert cloud.download_seconds > 0

    def test_bigger_backup_costs_more(self, rng):
        def run(nbytes):
            cloud = SimulatedCloud(InMemoryBackend())
            client = BackupClient(cloud, aa_dedupe_config(
                container_size=32 * KIB))
            client.backup(MemorySource({
                "x.doc": rng.integers(0, 256, nbytes,
                                      dtype=np.uint8).tobytes()}))
            return cloud.bill(), cloud.upload_seconds

        small_bill, small_time = run(20_000)
        big_bill, big_time = run(200_000)
        assert big_bill > small_bill
        assert big_time > small_time
