"""Unit tests for repro.util.io and repro.util.timer."""

import os

import pytest

from repro.util.io import atomic_write_bytes, atomic_write_text, walk_files
from repro.util.timer import Stopwatch, WallClock


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "a" / "b.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_overwrite(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_no_temp_residue(self, tmp_path):
        atomic_write_bytes(tmp_path / "f", b"data")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["f"]

    def test_text(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "héllo")
        assert (tmp_path / "t.txt").read_text() == "héllo"


class TestWalkFiles:
    def test_walk_sorted_and_relative(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.txt").write_bytes(b"22")
        (tmp_path / "a.txt").write_bytes(b"1")
        (tmp_path / "sub" / "c.txt").write_bytes(b"333")
        stats = list(walk_files(tmp_path))
        assert [s.relpath for s in stats] == ["a.txt", "b.txt", "sub/c.txt"]
        assert [s.size for s in stats] == [1, 2, 3]

    def test_skips_symlinks(self, tmp_path):
        (tmp_path / "real.txt").write_bytes(b"x")
        os.symlink(tmp_path / "real.txt", tmp_path / "link.txt")
        stats = list(walk_files(tmp_path))
        assert [s.relpath for s in stats] == ["real.txt"]

    def test_empty_dir(self, tmp_path):
        assert list(walk_files(tmp_path)) == []


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0 and not sw.running

    def test_custom_clock(self):
        class Fake:
            t = 0.0

            def now(self):
                self.t += 2.0
                return self.t

        sw = Stopwatch(clock=Fake())
        sw.start()
        assert sw.stop() == 2.0

    def test_wallclock_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()
