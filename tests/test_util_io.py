"""Unit tests for repro.util.io and repro.util.timer."""

import os
import threading
import time

import pytest

from repro.util.io import atomic_write_bytes, atomic_write_text, walk_files
from repro.util.timer import ConcurrentStopwatch, Stopwatch, WallClock


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "a" / "b.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_overwrite(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_no_temp_residue(self, tmp_path):
        atomic_write_bytes(tmp_path / "f", b"data")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["f"]

    def test_text(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "héllo")
        assert (tmp_path / "t.txt").read_text() == "héllo"


class TestWalkFiles:
    def test_walk_sorted_and_relative(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.txt").write_bytes(b"22")
        (tmp_path / "a.txt").write_bytes(b"1")
        (tmp_path / "sub" / "c.txt").write_bytes(b"333")
        stats = list(walk_files(tmp_path))
        assert [s.relpath for s in stats] == ["a.txt", "b.txt", "sub/c.txt"]
        assert [s.size for s in stats] == [1, 2, 3]

    def test_skips_symlinks(self, tmp_path):
        (tmp_path / "real.txt").write_bytes(b"x")
        os.symlink(tmp_path / "real.txt", tmp_path / "link.txt")
        stats = list(walk_files(tmp_path))
        assert [s.relpath for s in stats] == ["real.txt"]

    def test_empty_dir(self, tmp_path):
        assert list(walk_files(tmp_path)) == []


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0 and not sw.running

    def test_custom_clock(self):
        class Fake:
            t = 0.0

            def now(self):
                self.t += 2.0
                return self.t

        sw = Stopwatch(clock=Fake())
        sw.start()
        assert sw.stop() == 2.0

    def test_wallclock_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()


class _ManualClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class TestConcurrentStopwatch:
    def test_overlapping_intervals_count_once(self):
        # Two fully-overlapping intervals: the union is the outer span,
        # not the sum — the double-counting a plain Stopwatch entered
        # concurrently would produce.
        clock = _ManualClock()
        watch = ConcurrentStopwatch(clock=clock)
        watch.__enter__()            # t=0, outer interval opens
        clock.t = 2.0
        watch.__enter__()            # overlapping inner interval
        clock.t = 5.0
        watch.__exit__()             # inner closes; still running
        assert watch.running
        assert watch.elapsed == 0.0  # nothing accumulated yet
        clock.t = 7.0
        watch.__exit__()             # outer closes
        assert not watch.running
        assert watch.elapsed == 7.0  # union, not 5.0 + 3.0

    def test_disjoint_intervals_accumulate(self):
        clock = _ManualClock()
        watch = ConcurrentStopwatch(clock=clock)
        with watch:
            clock.t = 3.0
        clock.t = 10.0
        with watch:
            clock.t = 14.0
        assert watch.elapsed == 7.0

    def test_unbalanced_exit_raises(self):
        with pytest.raises(RuntimeError):
            ConcurrentStopwatch().__exit__()

    def test_threaded_union_not_sum(self):
        # Four threads hold overlapping intervals simultaneously (the
        # barrier guarantees the overlap): the accumulated time must be
        # roughly one interval, nowhere near the 4x sum that concurrent
        # entry into a single Stopwatch used to double-count.
        watch = ConcurrentStopwatch()
        n, hold = 4, 0.05
        barrier = threading.Barrier(n)

        def worker():
            barrier.wait()
            with watch:
                time.sleep(hold)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert watch.elapsed >= hold * 0.9
        assert watch.elapsed < n * hold * 0.75
