"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def source_tree(tmp_path, rng):
    src = tmp_path / "src"
    (src / "docs").mkdir(parents=True)
    (src / "docs" / "report.doc").write_bytes(
        rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes())
    (src / "song.mp3").write_bytes(
        rng.integers(0, 256, 30_000, dtype=np.uint8).tobytes())
    (src / "note.txt").write_bytes(b"a tiny note")
    return src


def run(*argv) -> int:
    return main([str(a) for a in argv])


class TestBackupRestoreCycle:
    def test_full_cycle(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store) == 0
        out = capsys.readouterr().out
        assert "session 0" in out

        # Second invocation = fresh process; must dedup via resume.
        assert run("backup", source_tree, "--store", store) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "0 new chunks" in out

        assert run("ls", "--store", store) == 0
        out = capsys.readouterr().out
        assert "AA-Dedupe" in out and "0" in out and "1" in out

        dest = tmp_path / "out"
        assert run("restore", "1", dest, "--store", store) == 0
        assert (dest / "docs" / "report.doc").read_bytes() == \
            (source_tree / "docs" / "report.doc").read_bytes()
        assert (dest / "note.txt").read_bytes() == b"a tiny note"

    def test_selective_restore(self, source_tree, tmp_path):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        dest = tmp_path / "partial"
        assert run("restore", "0", dest, "--store", store,
                   "--path", "note.txt") == 0
        assert (dest / "note.txt").exists()
        assert not (dest / "docs").exists()

    def test_alternative_scheme(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--scheme", "Avamar") == 0
        out = capsys.readouterr().out
        assert "[Avamar]" in out
        dest = tmp_path / "out"
        assert run("restore", "0", dest, "--store", store) == 0
        assert (dest / "song.mp3").read_bytes() == \
            (source_tree / "song.mp3").read_bytes()

    def test_unknown_scheme_exits(self, source_tree, tmp_path):
        with pytest.raises(SystemExit):
            run("backup", source_tree, "--store", tmp_path / "c",
                "--scheme", "tarball")

    def test_container_size_override(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--container-size", "64KB") == 0

    @pytest.mark.parametrize("chunker", ["gear", "fastcdc", "seqcdc"])
    def test_chunker_override_full_cycle(self, source_tree, tmp_path,
                                         capsys, chunker):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--chunker", chunker) == 0
        out = capsys.readouterr().out
        assert "session 0" in out
        dest = tmp_path / "out"
        assert run("restore", "0", dest, "--store", store) == 0
        assert (dest / "docs" / "report.doc").read_bytes() == \
            (source_tree / "docs" / "report.doc").read_bytes()

    def test_unknown_chunker_error_lists_valid_names(self, source_tree,
                                                     tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run("backup", source_tree, "--store", tmp_path / "c",
                "--chunker", "bogus")
        message = str(excinfo.value)
        assert "--chunker" in message and "'bogus'" in message
        for name in ("cdc", "gear", "fastcdc", "seqcdc"):
            assert name in message


class TestMaintenanceCommands:
    def test_scrub_clean(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        capsys.readouterr()
        assert run("scrub", "--store", store) == 0
        assert "store is clean" in capsys.readouterr().out

    def test_scrub_detects_corruption(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        containers = sorted((store / "containers").iterdir())
        blob = bytearray(containers[0].read_bytes())
        blob[200] ^= 0xFF
        containers[0].write_bytes(bytes(blob))
        assert run("scrub", "--store", store) == 1
        assert "PROBLEM" in capsys.readouterr().err

    def test_gc_keep_last(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        run("backup", source_tree, "--store", store)
        capsys.readouterr()
        assert run("gc", "--store", store, "--keep-last", "1") == 0
        out = capsys.readouterr().out
        assert "retained sessions: [1]" in out
        # Remaining session still restores.
        assert run("restore", "1", tmp_path / "out", "--store", store) == 0

    def test_gc_explicit_retain(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        run("backup", source_tree, "--store", store)
        capsys.readouterr()
        assert run("gc", "--store", store, "--retain", "0") == 0
        assert "retained sessions: [0]" in capsys.readouterr().out

    def test_gc_exits_nonzero_on_unreadable_retained_manifest(
            self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store)
        run("backup", source_tree, "--store", store)
        manifests = sorted((store / "manifests").iterdir())
        containers = len(list((store / "containers").iterdir()))
        manifests[-1].write_bytes(b"{corrupt json")
        capsys.readouterr()
        assert run("gc", "--store", store, "--keep-last", "2") == 1
        err = capsys.readouterr().err
        assert "PROBLEM" in err and "nothing deleted" in err
        # Refusing to sweep means all containers survive.
        assert len(list((store / "containers").iterdir())) == containers

    def test_estimate(self, source_tree, capsys):
        assert run("estimate", source_tree) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out
        assert "compressed" in out

    def test_estimate_delta(self, source_tree, capsys):
        assert run("estimate", source_tree, "--delta") == 0
        assert "delta stage" in capsys.readouterr().out

    def test_schemes_listing(self, capsys):
        assert run("schemes") == 0
        out = capsys.readouterr().out
        for name in ("JungleDisk", "BackupPC", "Avamar", "SAM",
                     "AA-Dedupe"):
            assert name in out


class TestDeltaFlag:
    def test_backup_with_delta_and_restore(self, source_tree, tmp_path,
                                           capsys, rng):
        import re

        # A near-duplicate of the document in the same tree: the delta
        # stage should store its changed chunks as deltas within one
        # invocation (the similarity index is per-process).
        doc = source_tree / "docs" / "report.doc"
        data = bytearray(doc.read_bytes())
        data[1000:1016] = rng.integers(0, 256, 16,
                                       dtype=np.uint8).tobytes()
        (source_tree / "docs" / "report_v2.doc").write_bytes(bytes(data))

        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--delta") == 0
        out = capsys.readouterr().out
        match = re.search(r"delta: (\d+) chunks", out)
        assert match is not None and int(match.group(1)) > 0

        dest = tmp_path / "out"
        assert run("restore", "0", dest, "--store", store) == 0
        assert (dest / "docs" / "report_v2.doc").read_bytes() == \
            bytes(data)
        assert (dest / "docs" / "report.doc").read_bytes() == \
            doc.read_bytes()
        assert run("scrub", "--store", store) == 0

    def test_no_delta_overrides(self, source_tree, tmp_path, capsys):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--no-delta") == 0
        assert "delta:" not in capsys.readouterr().out

    def test_stat_cache_replays_unchanged_tree(self, source_tree,
                                               tmp_path, capsys):
        # Directory sources carry real mtimes, so a second backup of
        # the untouched tree replays every file from the stat cache.
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store) == 0
        capsys.readouterr()
        assert run("backup", source_tree, "--store", store) == 0
        out = capsys.readouterr().out
        assert "stat cache: 3 unchanged files replayed" in out

    def test_no_stat_cache_overrides(self, source_tree, tmp_path,
                                     capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store, "--no-stat-cache")
        run("backup", source_tree, "--store", store, "--no-stat-cache")
        assert "stat cache:" not in capsys.readouterr().out


class TestDurabilityCommands:
    def replicated_store(self, source_tree, tmp_path):
        store = tmp_path / "cloud"
        assert run("backup", source_tree, "--store", store,
                   "--replication", "2",
                   "--fault-domains", "d0,d1,d2") == 0
        return store

    def test_backup_with_replication_writes_replicas(
            self, source_tree, tmp_path, capsys):
        store = self.replicated_store(source_tree, tmp_path)
        out = capsys.readouterr().out
        assert "replicas written" in out
        assert (store / "durability" / "plan.json").exists()
        replicas = list((store / "replicas").rglob("*"))
        assert any(p.is_file() for p in replicas)
        assert run("scrub", "--store", store) == 0

    def test_scrub_exits_nonzero_on_degraded_findings(
            self, source_tree, tmp_path, capsys):
        store = self.replicated_store(source_tree, tmp_path)
        victim = next(p for p in (store / "replicas").rglob("*")
                      if p.is_file())
        victim.unlink()
        capsys.readouterr()
        assert run("scrub", "--store", store) == 1
        captured = capsys.readouterr()
        # One-line findings summary on stdout, detail on stderr.
        assert "findings" in captured.out
        assert "repairable" in captured.out
        assert "DEGRADED" in captured.err
        assert "PROBLEM" not in captured.err
        assert "repro repair" in captured.err

    def test_repair_restores_replication(self, source_tree, tmp_path,
                                         capsys):
        store = self.replicated_store(source_tree, tmp_path)
        victim = next(p for p in (store / "replicas").rglob("*")
                      if p.is_file())
        victim.unlink()
        capsys.readouterr()
        assert run("repair", "--store", store) == 0
        assert "replicas rebuilt" in capsys.readouterr().out
        assert run("scrub", "--store", store) == 0

    def test_repair_promotes_lost_primary(self, source_tree, tmp_path,
                                          capsys):
        store = self.replicated_store(source_tree, tmp_path)
        containers = sorted((store / "containers").iterdir())
        containers[0].unlink()
        capsys.readouterr()
        assert run("repair", "--store", store) == 0
        assert "1 primaries promoted" in capsys.readouterr().out
        assert run("scrub", "--store", store) == 0
        assert run("restore", "0", tmp_path / "out", "--store",
                   store) == 0

    def test_repair_reports_unrepairable(self, source_tree, tmp_path,
                                         capsys):
        store = self.replicated_store(source_tree, tmp_path)
        containers = sorted((store / "containers").iterdir())
        containers[0].unlink()
        for p in list((store / "replicas").rglob("*")):
            if p.is_file():
                p.unlink()
        capsys.readouterr()
        assert run("repair", "--store", store) == 1
        assert "UNREPAIRABLE" in capsys.readouterr().err


class TestJobsCommand:
    """The declarative service CLI: exit-code contract 0/1/2."""

    CONFIG = (
        "jobs:\n"
        "  - name: docs\n"
        "    source: {kind: synthetic, files: 3, file_kib: 16}\n"
        "    schedule: {interval: 3600}\n"
        "    retention: {policy: retain-last, count: 2}\n"
        "  - name: media\n"
        "    scheme: Avamar\n"
        "    chunker: fastcdc\n"
        "    source: {kind: synthetic, files: 2, file_kib: 24}\n"
        "    schedule: {interval: 7200, offset: 600}\n"
        "    retention: {policy: max-age, seconds: 7200}\n"
        "  - name: vm\n"
        "    app_chunkers: {vmdk: seqcdc}\n"
        "    source: {kind: synthetic, files: 2, file_kib: 48}\n"
        "    schedule: {interval: 3600, offset: 1800}\n"
    )

    def config_file(self, tmp_path, text=None):
        path = tmp_path / "jobs.yaml"
        path.write_text(text if text is not None else self.CONFIG)
        return path

    def test_run_executes_heterogeneous_jobs(self, tmp_path, capsys):
        config = self.config_file(tmp_path)
        store = tmp_path / "store"
        assert run("jobs", "run", "--config", config, "--store", store,
                   "--until", "14400", "--report",
                   tmp_path / "report.json") == 0
        out = capsys.readouterr().out
        for job in ("docs", "media", "vm"):
            assert job in out
        assert "dropped" in out            # retention fired through GC
        import json
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["exit_code"] == 0
        assert {r["job"] for r in report["runs"]} == \
            {"docs", "media", "vm"}
        assert all(r["state"] == "SUCCEEDED" for r in report["runs"])

    def test_run_is_deterministic_across_invocations(self, tmp_path,
                                                     capsys):
        config = self.config_file(tmp_path)
        outputs = []
        for name in ("s1", "s2"):
            assert run("jobs", "run", "--config", config, "--store",
                       tmp_path / name, "--until", "7200") == 0
            outputs.append(capsys.readouterr().out)
            stores = sorted(
                p.relative_to(tmp_path / name)
                for p in (tmp_path / name).rglob("*") if p.is_file())
            outputs.append(stores)
        assert outputs[0] == outputs[2]
        assert outputs[1] == outputs[3]

    def test_list_jobs_needs_no_store(self, tmp_path, capsys):
        config = self.config_file(tmp_path)
        assert run("jobs", "run", "--config", config,
                   "--list-jobs") == 0
        out = capsys.readouterr().out
        assert "docs" in out and "Avamar" in out and "manual" not in out

    def test_job_subset_selection(self, tmp_path, capsys):
        config = self.config_file(tmp_path)
        store = tmp_path / "store"
        assert run("jobs", "run", "--config", config, "--store", store,
                   "--job", "media") == 0
        out = capsys.readouterr().out
        assert "media" in out and "docs" not in out

    def test_failing_job_exits_one_with_report(self, tmp_path, capsys):
        config = self.config_file(
            tmp_path,
            "jobs:\n"
            "  - name: doomed\n"
            "    source: {kind: synthetic, files: 2}\n"
            "    hooks:\n"
            "      pre: [{builtin: fail}]\n"
            "  - name: fine\n"
            "    source: {kind: synthetic, files: 2}\n")
        store = tmp_path / "store"
        assert run("jobs", "run", "--config", config,
                   "--store", store) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out        # report still printed
        assert "doomed" in captured.err

    def test_config_error_exits_two(self, tmp_path, capsys):
        config = self.config_file(
            tmp_path, "jobs:\n  - name: j\n    source: /x\n"
                      "    retention: {policy: hourly}\n")
        assert run("jobs", "run", "--config", config,
                   "--store", tmp_path / "s") == 2
        assert "config error" in capsys.readouterr().err

    def test_missing_config_file_exits_two(self, tmp_path, capsys):
        assert run("jobs", "run", "--config", tmp_path / "none.yaml",
                   "--store", tmp_path / "s") == 2
        assert "cannot read config" in capsys.readouterr().err

    def test_unknown_job_selection_exits_two(self, tmp_path, capsys):
        config = self.config_file(tmp_path)
        assert run("jobs", "run", "--config", config,
                   "--store", tmp_path / "s", "--job", "nope") == 2
        assert "no job named" in capsys.readouterr().err

    def test_missing_store_exits_two(self, tmp_path, capsys):
        config = self.config_file(tmp_path)
        assert run("jobs", "run", "--config", config) == 2
        assert "--store" in capsys.readouterr().err


class TestGcRetainLast:
    def test_retain_last_by_manifest_age(self, source_tree, tmp_path,
                                         capsys):
        store = tmp_path / "cloud"
        for i in range(3):
            (source_tree / "note.txt").write_text(f"rev {i}")
            run("backup", source_tree, "--store", store, "--quiet")
        capsys.readouterr()
        assert run("gc", "--store", store, "--retain-last", "2") == 0
        out = capsys.readouterr().out
        assert "retained sessions: [1, 2]" in out
        assert run("ls", "--store", store) == 0
        out = capsys.readouterr().out
        rows = [line.split("|")[0].strip()
                for line in out.splitlines()[2:] if "|" in line]
        assert rows == ["1", "2"]  # session 0 swept, newest two remain

    def test_retain_last_invalid_count_exits_two(self, source_tree,
                                                 tmp_path, capsys):
        store = tmp_path / "cloud"
        run("backup", source_tree, "--store", store, "--quiet")
        capsys.readouterr()
        assert run("gc", "--store", store, "--retain-last", "0") == 2
        assert "--retain-last" in capsys.readouterr().err
