"""Unit + property tests for Rabin fingerprinting (repro.hashing.rabin)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashError
from repro.hashing.base import available_hashes, get_hash
from repro.hashing.rabin import (
    POLY32,
    POLY64,
    ExtendedRabinFingerprinter,
    RabinFingerprinter,
    is_irreducible,
    make_shift_table,
    poly_mod,
    poly_mulmod,
)


class TestPolynomialArithmetic:
    def test_poly_mod_identity_below_degree(self):
        assert poly_mod(0b101, POLY64) == 0b101

    def test_poly_mod_reduces(self):
        # x^64 mod P64 == P64 - x^64 == the low pentanomial bits.
        assert poly_mod(1 << 64, POLY64) == 0b11011

    def test_poly_mulmod_by_one(self):
        assert poly_mulmod(0xDEADBEEF, 1, POLY64) == 0xDEADBEEF

    def test_poly_mulmod_commutative(self):
        a, b = 0x1234567, 0xFEDCBA9
        assert poly_mulmod(a, b, POLY64) == poly_mulmod(b, a, POLY64)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
           st.integers(0, 2**64 - 1))
    @settings(max_examples=30)
    def test_mulmod_distributes_over_xor(self, a, b, c):
        # GF(2) linearity: a*(b ^ c) == a*b ^ a*c (mod P).
        left = poly_mulmod(a, b ^ c, POLY64)
        right = poly_mulmod(a, b, POLY64) ^ poly_mulmod(a, c, POLY64)
        assert left == right


class TestIrreducibility:
    def test_poly64_irreducible(self):
        assert is_irreducible(POLY64)

    def test_poly32_irreducible(self):
        assert is_irreducible(POLY32)

    def test_reducible_rejected(self):
        # x^2 is reducible (x * x).
        assert not is_irreducible(0b100)

    def test_product_rejected(self):
        # (x+1)^2 = x^2 + 1.
        assert not is_irreducible(0b101)

    def test_known_small_irreducible(self):
        # x^3 + x + 1 is irreducible over GF(2).
        assert is_irreducible(0b1011)


class TestShiftTable:
    def test_zero_byte_maps_to_zero(self):
        assert make_shift_table(POLY64, 100)[0] == 0

    def test_matches_mulmod(self):
        table = make_shift_table(POLY64, 24)
        for b in (1, 7, 255):
            assert table[b] == poly_mod(b << 24, POLY64)


class TestRabinFingerprinter:
    def test_digest_size(self):
        assert RabinFingerprinter().digest_size == 8

    def test_deterministic(self):
        f = RabinFingerprinter()
        assert f.hash(b"abc") == f.hash(b"abc")

    def test_distinct_inputs_distinct_digests(self):
        f = RabinFingerprinter()
        assert f.hash(b"abc") != f.hash(b"abd")

    def test_empty_input(self):
        assert RabinFingerprinter().hash(b"") == b"\0" * 8

    def test_matches_polynomial_definition(self):
        # fp("ab") = ('a' * x^8 + 'b') mod P.
        f = RabinFingerprinter()
        expected = poly_mod((ord("a") << 8) | ord("b"), POLY64)
        assert f.hash_int(b"ab") == expected

    @given(st.binary(min_size=0, max_size=64), st.binary(min_size=1,
                                                         max_size=8))
    @settings(max_examples=50)
    def test_append_consistency(self, prefix, suffix):
        # Streaming from the prefix state equals hashing the concatenation.
        f = RabinFingerprinter()
        state = f._core.digest_bytes(prefix)
        assert f._core.digest_bytes(suffix, state) == f._core.digest_bytes(
            prefix + suffix)

    def test_degree_must_be_multiple_of_8(self):
        with pytest.raises(HashError):
            RabinFingerprinter(poly=(1 << 9) | 0b11, name="bad")


class TestVectorisedDigest:
    """The NumPy block digest must be bit-identical to the byte loop."""

    @given(st.binary(min_size=0, max_size=3000))
    @settings(max_examples=40, deadline=None)
    def test_property_fast_equals_slow(self, data):
        core = RabinFingerprinter()._core
        slow = 0
        for b in data:
            slow = core.append_byte(slow, b)
        assert core.digest_bytes_fast(data) == slow

    @pytest.mark.parametrize("n", [0, 1, 511, 512, 513, 1024, 4095,
                                   4096, 4097, 10_000])
    def test_block_boundaries(self, n):
        data = bytes(range(256)) * (n // 256 + 1)
        data = data[:n]
        core = RabinFingerprinter()._core
        slow = 0
        for b in data:
            slow = core.append_byte(slow, b)
        assert core.digest_bytes(data) == slow

    def test_large_input_uses_fast_path_and_matches(self):
        import numpy as np
        data = np.random.default_rng(9).integers(
            0, 256, 100_000, dtype=np.uint8).tobytes()
        f = RabinFingerprinter()
        by_loop = 0
        for b in data:
            by_loop = f._core.append_byte(by_loop, b)
        assert f.hash_int(data) == by_loop

    def test_initial_state_respected(self):
        core = RabinFingerprinter()._core
        prefix, body = b"prefix!", bytes(2048)
        state = core.digest_bytes(prefix)
        assert core.digest_bytes_fast(body, state) == core.digest_bytes(
            prefix + body)


class TestExtendedRabin:
    def test_digest_is_12_bytes(self):
        assert len(ExtendedRabinFingerprinter().hash(b"payload")) == 12

    def test_halves_are_independent_fingerprints(self):
        ext = ExtendedRabinFingerprinter()
        digest = ext.hash(b"payload")
        hi = RabinFingerprinter(POLY64).hash(b"payload")
        assert digest[:8] == hi

    def test_rejects_wrong_total_width(self):
        with pytest.raises(HashError):
            ExtendedRabinFingerprinter(poly_hi=POLY64, poly_lo=POLY64)


class TestRegistry:
    def test_expected_names_present(self):
        names = available_hashes()
        for expected in ("rabin12", "rabin64", "md5", "sha1"):
            assert expected in names

    def test_get_hash_caches_instances(self):
        assert get_hash("md5") is get_hash("md5")

    def test_unknown_hash_raises(self):
        with pytest.raises(HashError):
            get_hash("sha0")

    def test_digest_sizes_match_paper(self):
        # 12 B Rabin / 16 B MD5 / 20 B SHA-1 (paper Sec. III-D).
        assert get_hash("rabin12").digest_size == 12
        assert get_hash("md5").digest_size == 16
        assert get_hash("sha1").digest_size == 20
