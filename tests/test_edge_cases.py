"""Edge-case and adversarial-input tests across the system."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import RabinCDC
from repro.cloud import InMemoryBackend
from repro.core import (
    BackupClient,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
)
from repro.trace import TraceBackupClient
from repro.util.units import KIB, MIB
from repro.workloads.compose import Snapshot


# Low-entropy content breaks naive CDC implementations: zero runs,
# repeated motifs, alternating patterns.
_low_entropy = st.one_of(
    st.integers(0, 50_000).map(bytes),                        # zeros
    st.tuples(st.binary(min_size=1, max_size=16),
              st.integers(1, 4000)).map(lambda t: t[0] * t[1]),
    st.integers(0, 20_000).map(lambda n: b"\xff\x00" * n),
)


class TestCDCAdversarialContent:
    @given(data=_low_entropy)
    @settings(max_examples=30, deadline=None)
    def test_numpy_matches_oracle_on_low_entropy(self, data):
        fast = RabinCDC(avg_size=1 * KIB, min_size=256, max_size=4 * KIB,
                        window=16)
        slow = RabinCDC(avg_size=1 * KIB, min_size=256, max_size=4 * KIB,
                        window=16, use_numpy=False)
        assert fast.cut_points(data) == slow.cut_points(data)

    @given(data=_low_entropy)
    @settings(max_examples=30, deadline=None)
    def test_partition_invariants_on_low_entropy(self, data):
        cdc = RabinCDC(avg_size=1 * KIB, min_size=256, max_size=4 * KIB,
                       window=16)
        chunks = cdc.chunk(data)
        assert b"".join(c.data for c in chunks) == data
        for c in chunks[:-1]:
            assert 256 <= c.length <= 4 * KIB

    def test_numpy_scan_is_actually_faster(self):
        # The HPC-guide-driven vectorisation must pay off.
        import time
        data = np.random.default_rng(0).integers(
            0, 256, size=1 * MIB, dtype=np.uint8).tobytes()
        fast = RabinCDC()
        slow = RabinCDC(use_numpy=False)
        t0 = time.perf_counter()
        fast.chunk(data)
        fast_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow.chunk(data)
        slow_s = time.perf_counter() - t0
        assert fast_s < slow_s / 2


class TestEngineEdgeCases:
    def test_empty_source(self):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config())
        stats = client.backup(MemorySource({}))
        assert stats.files_total == 0
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == {}

    def test_only_empty_files(self):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config())
        files = {"a.txt": b"", "b/c.doc": b""}
        client.backup(MemorySource(files))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files

    def test_file_larger_than_container(self, rng):
        # A compressed file (WFC) much bigger than the container size
        # must ship as an oversized container and restore bit-exactly.
        big = rng.integers(0, 256, 3 * MIB, dtype=np.uint8).tobytes()
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB))
        stats = client.backup(MemorySource({"movie.avi": big}))
        assert stats.chunks_unique == 1
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored["movie.avi"] == big

    def test_unknown_extension_treated_as_dynamic(self, rng):
        data = rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes()
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config())
        stats = client.backup(MemorySource({"blob.xyz123": data}))
        # Dynamic category: CDC-scanned with SHA-1.
        assert stats.ops.cdc_scanned_bytes == 40_000
        assert "sha1" in stats.ops.hashed_bytes
        assert client.index.apps == ["unknown"]

    def test_path_with_unicode_and_spaces(self, rng):
        data = rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()
        files = {"Ünïcode dir/my réport (final).doc": data}
        cloud = InMemoryBackend()
        BackupClient(cloud, aa_dedupe_config()).backup(MemorySource(files))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files

    def test_many_identical_tiny_files(self):
        # Tiny files bypass dedup by design: N copies cost N extents.
        files = {f"tiny/t{i:03d}.txt": b"same tiny content"
                 for i in range(50)}
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config())
        stats = client.backup(MemorySource(files))
        assert stats.files_tiny == 50
        assert stats.bytes_unique == 50 * 17
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files


class TestTraceEngineEdgeCases:
    def test_empty_snapshot(self):
        client = TraceBackupClient(aa_dedupe_config())
        stats = client.backup(Snapshot(session=0))
        assert stats.files_total == 0
        assert stats.put_requests >= 1  # the (empty) manifest

    def test_deleted_files_disappear_from_accounting(self):
        from repro.workloads import WorkloadGenerator
        from repro.util.units import MB
        gen = WorkloadGenerator(total_bytes=12 * MB, seed=31,
                                max_mean_file_size=1 * MB)
        snap = gen.initial_snapshot()
        client = TraceBackupClient(aa_dedupe_config())
        client.backup(snap)
        smaller = snap.copy(1)
        victims = sorted(smaller.files)[:10]
        for path in victims:
            smaller.remove(path)
        stats = client.backup(smaller)
        assert stats.files_total == len(snap) - 10
