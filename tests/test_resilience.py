"""Fault-tolerant transport: chaos injection, retry, resumable sessions.

Everything here runs on a :class:`VirtualClock` — retry backoff and WAN
stalls advance simulated time only, so the suite is instant and every
fault sequence replays deterministically from its seed.
"""

import threading

import numpy as np
import pytest

from repro.cloud import (
    ChaosBackend,
    InMemoryBackend,
    RetryPolicy,
    SimulatedCloud,
    WANLink,
)
from repro.core import (
    BackupClient,
    MemorySource,
    RestoreClient,
    SessionJournal,
    aa_dedupe_config,
    naming,
)
from repro.core.backup import _PipelinedUploader
from repro.core.scrub import scrub_cloud
from repro.core.sync import IndexSynchronizer
from repro.errors import (
    BackupError,
    CloudError,
    ObjectNotFound,
    PermanentCloudError,
    TransientCloudError,
)
from repro.simulate.clock import VirtualClock
from repro.util.units import KIB


@pytest.fixture()
def files(rng):
    return {f"docs/report{i}.doc": rng.integers(
        0, 256, 40_000, dtype=np.uint8).tobytes() for i in range(8)}


# ---------------------------------------------------------------------------
class TestObjectNotFound:
    def test_str_is_readable(self):
        exc = ObjectNotFound("containers/42")
        assert str(exc) == "cloud object not found: 'containers/42'"
        assert exc.key == "containers/42"

    def test_still_a_keyerror_and_clouderror(self):
        with pytest.raises(KeyError):
            InMemoryBackend().get("ghost")
        with pytest.raises(CloudError):
            InMemoryBackend().get("ghost")


# ---------------------------------------------------------------------------
class TestChaosBackend:
    def test_passthrough_when_quiet(self):
        be = ChaosBackend(InMemoryBackend())
        be.put("k", b"v")
        assert be.get("k") == b"v"
        assert be.chaos.total_faults == 0

    def test_transient_errors_are_deterministic(self):
        def run():
            be = ChaosBackend(InMemoryBackend(), seed=7,
                              transient_error_rate=0.3)
            outcomes = []
            for i in range(50):
                try:
                    be.put(f"k{i}", b"x")
                    outcomes.append("ok")
                except TransientCloudError:
                    outcomes.append("fail")
            return outcomes, be.chaos.transient_errors

        assert run() == run()
        outcomes, n = run()
        assert outcomes.count("fail") == n > 0

    def test_transient_put_has_no_side_effect(self):
        be = ChaosBackend(InMemoryBackend(), seed=1,
                          transient_error_rate=1.0)
        with pytest.raises(TransientCloudError):
            be.put("k", b"v")
        assert be.inner._get("k") is None

    def test_lost_ack_stores_then_raises(self):
        be = ChaosBackend(InMemoryBackend(), seed=1, ack_loss_rate=1.0)
        with pytest.raises(TransientCloudError):
            be.put("k", b"v")
        assert be.inner._get("k") == b"v"
        assert be.chaos.lost_acks == 1

    def test_permanent_error_keys(self):
        be = ChaosBackend(InMemoryBackend(),
                          permanent_error_keys={"poison"})
        be.put("fine", b"v")
        with pytest.raises(PermanentCloudError):
            be.put("poison", b"v")
        assert not RetryPolicy.is_retryable(
            pytest.raises(PermanentCloudError, be.get, "poison").value)

    def test_bit_flip_corruption_is_transport_only(self):
        be = ChaosBackend(InMemoryBackend(), seed=3, corrupt_rate=1.0)
        be.inner._put("k", bytes(100))
        corrupted = be.get("k")
        assert corrupted != bytes(100)
        assert len(corrupted) == 100
        # exactly one bit differs
        diff = [a ^ b for a, b in zip(corrupted, bytes(100))]
        assert sum(bin(d).count("1") for d in diff) == 1
        # the stored object is untouched; a clean read would succeed
        assert be.inner._get("k") == bytes(100)

    def test_latency_spikes_accumulate_and_drain(self):
        be = ChaosBackend(InMemoryBackend(), seed=2,
                          latency_spike_rate=1.0,
                          latency_spike_seconds=1.5)
        be.put("k", b"v")
        assert be.chaos.latency_spikes == 1
        assert be.consume_spike_seconds() == pytest.approx(1.5)
        assert be.consume_spike_seconds() == 0.0

    def test_attempts_are_counted_in_backend_stats(self):
        be = ChaosBackend(InMemoryBackend(), seed=1,
                          transient_error_rate=1.0)
        with pytest.raises(TransientCloudError):
            be.put("k", bytes(10))
        # the failed attempt still burned requests and bytes
        assert be.stats.put_requests == 1
        assert be.stats.bytes_uploaded == 10


# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=5, clock=clock, seed=0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCloudError("blip")
            return "done"

        assert policy.call(flaky) == "done"
        assert calls["n"] == 3
        assert policy.stats.retries == 2
        assert clock.now() == pytest.approx(policy.stats.sleep_seconds)
        assert clock.now() > 0

    def test_exhaustion_raises_original_with_attempt_count(self):
        policy = RetryPolicy(max_attempts=4, clock=VirtualClock(), seed=0)

        def always_fails():
            raise TransientCloudError("the original failure")

        with pytest.raises(TransientCloudError) as info:
            policy.call(always_fails)
        assert "the original failure" in str(info.value)
        assert info.value.retry_attempts == 4
        assert policy.stats.exhausted == 1

    def test_not_found_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5, clock=VirtualClock())
        calls = {"n": 0}

        def missing():
            calls["n"] += 1
            raise ObjectNotFound("ghost")

        with pytest.raises(ObjectNotFound) as info:
            policy.call(missing)
        assert calls["n"] == 1
        assert info.value.retry_attempts == 1

    def test_permanent_error_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5, clock=VirtualClock())
        calls = {"n": 0}

        def denied():
            calls["n"] += 1
            raise PermanentCloudError("403")

        with pytest.raises(PermanentCloudError):
            policy.call(denied)
        assert calls["n"] == 1

    def test_non_cloud_errors_pass_through(self):
        policy = RetryPolicy(max_attempts=5, clock=VirtualClock())
        with pytest.raises(ValueError):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("x")))
        assert policy.stats.retries == 0

    def test_retry_budget_bounds_total_sleep(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=100, base_delay=1.0,
                             max_delay=5.0, retry_budget=10.0,
                             clock=clock, seed=0)
        with pytest.raises(TransientCloudError):
            policy.call(lambda: (_ for _ in ()).throw(
                TransientCloudError("down")))
        assert policy.stats.sleep_seconds <= 10.0
        assert policy.stats.attempts < 100

    def test_backoff_is_decorrelated_jitter(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=6, base_delay=0.2,
                             max_delay=10.0, retry_budget=1e9,
                             clock=clock, seed=42)
        sleeps = []
        orig = policy._sleep

        def spy(seconds):
            sleeps.append(seconds)
            orig(seconds)

        policy._sleep = spy
        with pytest.raises(TransientCloudError):
            policy.call(lambda: (_ for _ in ()).throw(
                TransientCloudError("down")))
        assert len(sleeps) == 5
        assert all(0.2 <= s <= 10.0 for s in sleeps)

    def test_deterministic_given_seed(self):
        def total_sleep(seed):
            clock = VirtualClock()
            policy = RetryPolicy(max_attempts=6, clock=clock, seed=seed)
            with pytest.raises(TransientCloudError):
                policy.call(lambda: (_ for _ in ()).throw(
                    TransientCloudError("down")))
            return clock.now()

        assert total_sleep(9) == total_sleep(9)


# ---------------------------------------------------------------------------
class TestSimulatedCloudResilience:
    def test_retry_absorbs_transient_faults(self):
        clock = VirtualClock()
        cloud = SimulatedCloud(
            ChaosBackend(InMemoryBackend(), seed=11,
                         transient_error_rate=0.4),
            wan=WANLink(), clock=clock,
            retry=RetryPolicy(max_attempts=10, seed=1))
        for i in range(20):
            cloud.put(f"k{i}", b"payload")
        assert [cloud.get(f"k{i}") for i in range(20)] == [b"payload"] * 20
        assert cloud.backend.chaos.transient_errors > 0

    def test_retry_policy_inherits_cloud_clock(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3)
        SimulatedCloud(InMemoryBackend(), clock=clock, retry=policy)
        assert policy.clock is clock

    def test_failed_attempts_pay_wan_time(self):
        wan = WANLink(request_latency=0.1, concurrent_requests=1,
                      up_bandwidth=1000)
        cloud = SimulatedCloud(
            ChaosBackend(InMemoryBackend(), seed=1,
                         transient_error_rate=1.0),
            wan=wan, clock=VirtualClock())
        with pytest.raises(TransientCloudError):
            cloud.put("k", bytes(1000))
        assert cloud.upload_seconds == pytest.approx(1.1)

    def test_latency_spikes_charged_to_wan_and_clock(self):
        clock = VirtualClock()
        wan = WANLink(request_latency=0.1, concurrent_requests=1,
                      up_bandwidth=1000)
        cloud = SimulatedCloud(
            ChaosBackend(InMemoryBackend(), seed=2,
                         latency_spike_rate=1.0,
                         latency_spike_seconds=2.0),
            wan=wan, clock=clock)
        cloud.put("k", bytes(1000))
        assert cloud.upload_seconds == pytest.approx(1.1 + 2.0)
        assert clock.now() == pytest.approx(1.1 + 2.0)

    @pytest.mark.parametrize("op", ["put", "get", "exists"])
    def test_latency_spikes_drain_identically_across_ops(self, op):
        # A chaos latency spike must land on the virtual clock (and the
        # WAN accounting) the same way no matter which operation
        # triggered it: the spiked run costs exactly the quiet run plus
        # the spike, with nothing left pending in the backend.
        def run(spike_rate):
            clock = VirtualClock()
            wan = WANLink(request_latency=0.1, concurrent_requests=1,
                          up_bandwidth=1000, down_bandwidth=1000)
            chaos = ChaosBackend(InMemoryBackend(), seed=6,
                                 latency_spike_rate=spike_rate,
                                 latency_spike_seconds=2.5)
            chaos.inner._put("k", bytes(1000))  # seed without traffic
            cloud = SimulatedCloud(chaos, wan=wan, clock=clock)
            if op == "put":
                cloud.put("k", bytes(1000))
            elif op == "get":
                assert cloud.get("k") == bytes(1000)
            else:
                assert cloud.exists("k")
            return clock.now(), cloud.transfer_seconds(), chaos

        quiet_clock, quiet_wan, _ = run(0.0)
        spiked_clock, spiked_wan, chaos = run(1.0)
        assert chaos.chaos.latency_spikes == 1
        assert spiked_clock - quiet_clock == pytest.approx(2.5)
        assert spiked_wan - quiet_wan == pytest.approx(2.5)
        assert chaos.consume_spike_seconds() == 0.0  # fully drained

    def test_exists_charges_amortised_request_latency(self):
        # Regression (HEAD parity): an existence probe pays exactly a
        # zero-byte GET — latency amortised across concurrent request
        # slots — not a full un-amortised round trip.
        clock = VirtualClock()
        wan = WANLink(request_latency=0.08, concurrent_requests=4)
        cloud = SimulatedCloud(InMemoryBackend(), wan=wan, clock=clock)
        cloud.put("k", b"v")
        t0 = clock.now()
        down0 = cloud.download_seconds
        assert cloud.exists("k")
        assert clock.now() - t0 == pytest.approx(
            wan.download_time(0, 1)) == pytest.approx(0.02)
        assert cloud.download_seconds - down0 == pytest.approx(0.02)


# ---------------------------------------------------------------------------
class TestPipelinedUploaderFailFast:
    def test_drops_queued_work_after_first_error(self):
        uploaded, started = [], threading.Event()

        def put(key, blob):
            started.wait(5)
            if key == "bad":
                raise CloudError("boom")
            uploaded.append(key)

        up = _PipelinedUploader(put, depth=10)
        up.submit("ok-1", b"x")
        up.submit("bad", b"x")
        up.submit("after-1", b"x")
        up.submit("after-2", b"x")
        started.set()
        with pytest.raises(BackupError):
            up.close()
        assert uploaded == ["ok-1"]  # nothing after the failure

    def test_rejects_submit_after_error(self):
        up = _PipelinedUploader(
            lambda k, b: (_ for _ in ()).throw(CloudError("boom")))
        up.submit("a", b"x")
        # Completion tracking is the outstanding counter (not
        # queue.join()); wait on it until the failed upload lands.
        with up._cond:
            assert up._cond.wait_for(
                lambda: up._outstanding == 0, timeout=5.0)
        with pytest.raises(BackupError):
            up.submit("b", b"x")
        with pytest.raises(BackupError):
            up.close()
        assert not up._thread.is_alive()

    def test_close_joins_worker_thread_on_success(self):
        up = _PipelinedUploader(lambda k, b: None)
        up.submit("a", b"x")
        up.close()
        assert not up._thread.is_alive()

    def test_on_success_runs_per_durable_upload(self):
        seen = []
        up = _PipelinedUploader(lambda k, b: None,
                                on_success=lambda k, b: seen.append(k))
        up.submit("a", b"x")
        up.submit("b", b"y")
        up.close()
        assert seen == ["a", "b"]


# ---------------------------------------------------------------------------
class _FlakyIndexBackend(InMemoryBackend):
    """Fails every put under index/ while ``failing`` is True."""

    def __init__(self):
        super().__init__()
        self.failing = False

    def _put(self, key, data):
        if self.failing and key.startswith(naming.INDEX_PREFIX):
            raise TransientCloudError("index replica put failed")
        super()._put(key, data)


class TestIndexSyncDegradation:
    def test_push_failure_degrades_to_warning(self, files):
        cloud = _FlakyIndexBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB))
        cloud.failing = True
        stats = client.backup(MemorySource(files), session_id=0)
        assert stats.files_total == len(files)
        assert any("index sync failed" in w for w in stats.warnings)
        assert cloud.list(naming.INDEX_PREFIX) == []

    def test_failed_push_retried_on_next_sync(self, files):
        cloud = _FlakyIndexBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB))
        cloud.failing = True
        client.backup(MemorySource(files), session_id=0)
        cloud.failing = False
        stats = client.backup(MemorySource(files), session_id=1)
        assert stats.warnings == []
        assert cloud.list(naming.INDEX_PREFIX) != []

    def test_partial_push_keeps_successes(self):
        # Subindices after the failing one still replicate; only the
        # failed one stays stale (and is retried next push).
        from repro.index.appaware import AppAwareIndex
        from repro.index.base import IndexEntry

        class OnePoisonBackend(InMemoryBackend):
            def _put(self, key, data):
                if key == naming.index_key("bad"):
                    raise TransientCloudError("nope")
                super()._put(key, data)

        cloud = OnePoisonBackend()
        index = AppAwareIndex()
        for app in ("aaa", "bad", "zzz"):
            index.subindex(app).insert(IndexEntry(
                fingerprint=app.encode() * 4, container_id=0,
                offset=0, length=1))
        sync = IndexSynchronizer(cloud)
        with pytest.raises(CloudError, match="index sync incomplete"):
            sync.push(index)
        stored = cloud.list(naming.INDEX_PREFIX)
        assert naming.index_key("aaa") in stored
        assert naming.index_key("zzz") in stored
        assert naming.index_key("bad") not in stored
        # the failed subindex is re-pushed once the fault clears
        cloud.__class__ = InMemoryBackend
        assert sync.push(index) == 1
        assert naming.index_key("bad") in cloud.list(naming.INDEX_PREFIX)


# ---------------------------------------------------------------------------
class TestSessionJournal:
    def test_fresh_when_absent(self):
        journal = SessionJournal.load(InMemoryBackend(), 0,
                                      first_container_id=5)
        assert not journal.resumed
        assert journal.first_container_id == 5
        assert len(journal) == 0

    def test_round_trip(self):
        cloud = InMemoryBackend()
        journal = SessionJournal(cloud, 3, first_container_id=7)
        journal.record("containers/0000000007", b"blob-a")
        journal.record("containers/0000000008", b"blob-b")
        again = SessionJournal.load(cloud, 3)
        assert again.resumed
        assert again.first_container_id == 7
        assert again.completed("containers/0000000007", b"blob-a")
        assert not again.completed("containers/0000000007", b"DIFFERENT")
        assert not again.completed("containers/0000000009", b"blob-a")

    def test_commit_deletes_journal(self):
        cloud = InMemoryBackend()
        journal = SessionJournal(cloud, 0)
        journal.record("k", b"v")
        assert cloud.list(naming.JOURNAL_PREFIX)
        journal.commit()
        assert cloud.list(naming.JOURNAL_PREFIX) == []

    def test_corrupt_journal_degrades_to_fresh(self):
        cloud = InMemoryBackend()
        cloud.put(naming.journal_key(0), b"{not json")
        journal = SessionJournal.load(cloud, 0, first_container_id=2)
        assert not journal.resumed
        assert journal.first_container_id == 2
        assert journal.warnings

    def test_maintenance_failures_never_raise(self):
        class NoPuts(InMemoryBackend):
            def _put(self, key, data):
                raise TransientCloudError("down")

        journal = SessionJournal(NoPuts(), 0)
        journal.record("k", b"v")  # flush fails silently
        assert any("journal flush failed" in w for w in journal.warnings)


# ---------------------------------------------------------------------------
class _CrashBackend(InMemoryBackend):
    """Simulates the process dying after N successful container puts."""

    def __init__(self, crash_after_containers):
        super().__init__()
        self.crash_after = crash_after_containers
        self.container_puts = 0
        self.armed = True
        #: container payload bytes offered, per run phase
        self.container_bytes_put = 0

    def _put(self, key, data):
        if key.startswith(naming.CONTAINER_PREFIX):
            if self.armed and self.container_puts >= self.crash_after:
                raise RuntimeError("simulated crash (power loss)")
            self.container_puts += 1
            self.container_bytes_put += len(data)
        super()._put(key, data)


class TestResumableSessions:
    CONTAINER = 32 * KIB

    def _config(self):
        return aa_dedupe_config(container_size=self.CONTAINER,
                                resumable=True)

    def _big_files(self, rng, n=24):
        return {f"docs/f{i:02d}.doc": rng.integers(
            0, 256, 36_000, dtype=np.uint8).tobytes() for i in range(n)}

    def test_resume_after_crash_is_byte_identical_and_cheap(self, rng):
        files = self._big_files(rng)
        # Size the crash so ~85 % of the containers made it up before
        # the power went out (dry run on a scratch store to count them).
        dry = InMemoryBackend()
        BackupClient(dry, self._config()).backup(MemorySource(files))
        total_containers = len(dry.list(naming.CONTAINER_PREFIX))
        crash_after = int(total_containers * 0.85)

        cloud = _CrashBackend(crash_after_containers=crash_after)
        client = BackupClient(cloud, self._config())
        with pytest.raises(RuntimeError, match="simulated crash"):
            client.backup(MemorySource(files), session_id=0)
        assert cloud.container_puts == crash_after
        assert cloud.list(naming.JOURNAL_PREFIX)  # interrupted marker

        # Fresh client (process restart), same source, same session id.
        cloud.armed = False
        first_run_bytes = cloud.container_bytes_put
        cloud.container_bytes_put = 0
        resumed = BackupClient(cloud, self._config())
        stats = resumed.backup(MemorySource(files), session_id=0)

        # The journal skipped every durable container; the re-run
        # re-uploaded under 20 % of the session's container bytes.
        assert stats.resume_skipped_objects == crash_after
        total_container_bytes = first_run_bytes + cloud.container_bytes_put
        assert cloud.container_bytes_put < 0.2 * total_container_bytes

        # Converged store: byte-identical restore, clean scrub, no
        # journal left behind.
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files
        report = scrub_cloud(cloud)
        assert report.clean, report.problems
        assert cloud.list(naming.JOURNAL_PREFIX) == []

    def test_resume_reuses_container_ids(self, rng):
        files = self._big_files(rng, n=12)
        cloud = _CrashBackend(crash_after_containers=6)
        with pytest.raises(RuntimeError):
            BackupClient(cloud, self._config()).backup(
                MemorySource(files), session_id=0)
        ids_before = set(cloud.list(naming.CONTAINER_PREFIX))
        cloud.armed = False
        BackupClient(cloud, self._config()).backup(
            MemorySource(files), session_id=0)
        # every crashed-run container is referenced, none orphaned
        assert ids_before <= set(cloud.list(naming.CONTAINER_PREFIX))
        report = scrub_cloud(cloud)
        assert report.clean, report.problems

    def test_completed_session_leaves_no_journal(self, rng):
        files = self._big_files(rng, n=4)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, self._config())
        stats = client.backup(MemorySource(files))
        assert stats.resume_skipped_objects == 0
        assert cloud.list(naming.JOURNAL_PREFIX) == []

    def test_resumable_off_by_default(self, rng):
        assert aa_dedupe_config().resumable is False

    def test_pipelined_resume(self, rng):
        # Journal recording also works on the pipelined upload path
        # (records happen on the worker thread, after the durable put).
        files = self._big_files(rng, n=12)
        cloud = _CrashBackend(crash_after_containers=6)
        cfg = self._config().with_(pipeline_uploads=True)
        with pytest.raises((BackupError, RuntimeError)):
            BackupClient(cloud, cfg).backup(MemorySource(files),
                                            session_id=0)
        cloud.armed = False
        stats = BackupClient(cloud, cfg).backup(MemorySource(files),
                                                session_id=0)
        assert stats.resume_skipped_objects == 6
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files
        assert scrub_cloud(cloud).clean


# ---------------------------------------------------------------------------
class TestChaosBackupAcceptance:
    """The ISSUE's end-to-end acceptance scenario."""

    def test_aa_dedupe_completes_under_paper_wan_chaos(self, rng):
        files = {f"docs/f{i:02d}.doc": rng.integers(
            0, 256, 50_000, dtype=np.uint8).tobytes() for i in range(10)}
        clock = VirtualClock()
        chaos = ChaosBackend(InMemoryBackend(), seed=2011,
                             transient_error_rate=0.05,
                             latency_spike_rate=0.02,
                             latency_spike_seconds=3.0)
        retry = RetryPolicy(max_attempts=8, seed=4, clock=clock)
        cloud = SimulatedCloud(chaos, clock=clock, retry=retry)
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, resumable=True))
        stats = client.backup(MemorySource(files))

        assert stats.files_total == len(files)
        assert chaos.chaos.transient_errors > 0   # faults really fired
        assert retry.stats.retries >= chaos.chaos.transient_errors
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files
        report = scrub_cloud(cloud)
        assert report.clean, report.problems
        # all sleeps/stalls landed on the virtual clock, instantly
        assert clock.now() > cloud.transfer_seconds() - 1e-9

    def test_deterministic_replay(self, rng):
        files = {f"a/f{i}.doc": rng.integers(
            0, 256, 30_000, dtype=np.uint8).tobytes() for i in range(6)}

        def run():
            clock = VirtualClock()
            chaos = ChaosBackend(InMemoryBackend(), seed=5,
                                 transient_error_rate=0.2)
            cloud = SimulatedCloud(
                chaos, clock=clock,
                retry=RetryPolicy(max_attempts=8, seed=5, clock=clock))
            BackupClient(cloud, aa_dedupe_config(
                container_size=64 * KIB)).backup(MemorySource(files))
            return (clock.now(), chaos.chaos.transient_errors,
                    cloud.stats.put_requests)

        first, second = run(), run()
        assert first[1:] == second[1:]
        # The manifest embeds a wall-clock creation timestamp whose
        # repr length can differ by a byte or two between runs; the
        # fault sequence and every request count replay exactly.
        assert first[0] == pytest.approx(second[0], abs=1e-3)
