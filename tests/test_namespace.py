"""Tests for NamespacedBackend shared-prefix semantics and fault
injection through tenant views."""

import pytest

from repro.cloud import InMemoryBackend, NamespacedBackend
from repro.cloud.faults import ChaosBackend
from repro.core import naming
from repro.errors import ObjectNotFound, PermanentCloudError


@pytest.fixture()
def shared():
    raw = InMemoryBackend()
    return raw, NamespacedBackend(raw, "a"), NamespacedBackend(raw, "b")


CONTAINER = naming.container_key(7)


class TestSharedPrefixes:
    def test_shared_put_visible_to_every_tenant(self, shared):
        raw, a, b = shared
        a.put(CONTAINER, b"payload")
        assert raw.get(CONTAINER) == b"payload"  # unprefixed
        assert b.get(CONTAINER) == b"payload"
        assert b.exists(CONTAINER)

    def test_shared_delete_by_other_tenant(self, shared):
        _raw, a, b = shared
        a.put(CONTAINER, b"payload")
        assert b.delete(CONTAINER)
        assert not a.exists(CONTAINER)
        with pytest.raises(ObjectNotFound):
            a.get(CONTAINER)

    def test_shared_list_merges_into_tenant_view(self, shared):
        _raw, a, b = shared
        a.put(CONTAINER, b"x")
        a.put("manifests/session-000000.json", b"{}")
        keys = set(b.list(""))
        assert CONTAINER in keys
        assert "manifests/session-000000.json" not in keys
        assert set(b.list(naming.CONTAINER_PREFIX)) == {CONTAINER}

    def test_replica_and_durability_keys_are_shared(self, shared):
        raw, a, b = shared
        replica = naming.replica_key("d1", 7)
        a.put(replica, b"copy")
        a.put(naming.DURABILITY_PLAN_KEY, b"{}")
        assert raw.get(replica) == b"copy"
        assert b.get(replica) == b"copy"
        assert b.get(naming.DURABILITY_PLAN_KEY) == b"{}"
        assert set(b.list(naming.REPLICA_PREFIX)) == {replica}

    def test_private_keys_stay_isolated(self, shared):
        raw, a, b = shared
        a.put("manifests/session-000000.json", b"{}")
        assert raw.exists("clients/a/manifests/session-000000.json")
        assert not b.exists("manifests/session-000000.json")
        assert b.list(naming.MANIFEST_PREFIX) == []
        assert not b.delete("manifests/session-000000.json")
        assert a.exists("manifests/session-000000.json")

    def test_same_private_key_in_two_tenants(self, shared):
        _raw, a, b = shared
        a.put("journals/session-000000.json", b"A")
        b.put("journals/session-000000.json", b"B")
        assert a.get("journals/session-000000.json") == b"A"
        assert b.get("journals/session-000000.json") == b"B"
        b.delete("journals/session-000000.json")
        assert a.get("journals/session-000000.json") == b"A"

    def test_tenant_cannot_see_namespace_root(self, shared):
        raw, a, _b = shared
        raw.put("clients/b/manifests/session-000000.json", b"{}")
        assert a.list(naming.TENANT_PREFIX) == []

    def test_fully_isolated_view(self):
        raw = InMemoryBackend()
        view = NamespacedBackend(raw, "solo", shared_prefixes=())
        view.put(CONTAINER, b"x")
        assert raw.exists(f"clients/solo/{CONTAINER}")
        assert not raw.exists(CONTAINER)


class TestChaosThroughNamespace:
    """permanent_error_keys matches the *post-prefix* keys tenants
    actually issue against the shared backend."""

    def test_private_key_fault_needs_prefixed_key(self):
        chaos = ChaosBackend(
            InMemoryBackend(),
            permanent_error_keys={
                "clients/t0/manifests/session-000000.json"})
        view = NamespacedBackend(chaos, "t0")
        with pytest.raises(PermanentCloudError):
            view.put("manifests/session-000000.json", b"{}")
        # The unprefixed spelling never reaches the chaos layer, so
        # configuring it is a no-op for tenant traffic.
        chaos2 = ChaosBackend(
            InMemoryBackend(),
            permanent_error_keys={"manifests/session-000000.json"})
        view2 = NamespacedBackend(chaos2, "t0")
        view2.put("manifests/session-000000.json", b"{}")
        assert view2.exists("manifests/session-000000.json")

    def test_shared_key_fault_uses_unprefixed_key(self):
        chaos = ChaosBackend(InMemoryBackend(),
                             permanent_error_keys={CONTAINER})
        view = NamespacedBackend(chaos, "t0")
        with pytest.raises(PermanentCloudError):
            view.put(CONTAINER, b"payload")

    def test_fault_isolated_to_one_tenant(self):
        chaos = ChaosBackend(
            InMemoryBackend(),
            permanent_error_keys={"clients/a/journals/j"})
        a = NamespacedBackend(chaos, "a")
        b = NamespacedBackend(chaos, "b")
        with pytest.raises(PermanentCloudError):
            a.put("journals/j", b"x")
        b.put("journals/j", b"x")
        assert b.get("journals/j") == b"x"
