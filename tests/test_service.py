"""Tests for the declarative backup service layer (repro.service)."""

import pytest

from repro.cloud import InMemoryBackend, NamespacedBackend
from repro.core import naming
from repro.core.filecache import read_epoch
from repro.core.restore import RestoreClient
from repro.core.retention import RetainLastN, RetainMaxAge
from repro.core.source import MemorySource
from repro.errors import ConfigError
from repro.service import (
    BackupService,
    CallableJobSource,
    HookSet,
    HookSpec,
    IntervalSchedule,
    JobClock,
    JobSpec,
    SyntheticJobSource,
    loads_config,
    parse_config,
    run_hook,
)


# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_minimal_yaml(self):
        spec = loads_config(
            "jobs:\n"
            "  - name: docs\n"
            "    source: {kind: synthetic, files: 3}\n"
            "    schedule: {interval: 3600, offset: 60}\n"
            "    retention: {policy: retain-last, count: 2}\n")
        job = spec.job("docs")
        assert job.scheme == "AA-Dedupe"
        assert job.schedule == IntervalSchedule(3600, 60)
        assert job.retention == RetainLastN(2)

    def test_string_source_is_directory(self):
        spec = parse_config({"jobs": [{"name": "j", "source": "/data"}]})
        assert spec.job("j").describe_source() == "/data"

    def test_max_age_retention(self):
        spec = parse_config({"jobs": [{
            "name": "j", "source": "/data",
            "retention": {"policy": "max-age", "seconds": 86400}}]})
        assert spec.job("j").retention == RetainMaxAge(86400.0)

    @pytest.mark.parametrize("doc, fragment", [
        ({"jobs": [{"name": "a/b", "source": "/x"}]}, "namespace-safe"),
        ({"jobs": [{"name": "a", "source": "/x", "scheme": "nope"}]},
         "unknown scheme"),
        ({"jobs": [{"name": "a", "source": "/x", "bogus": 1}]},
         "unknown key"),
        ({"jobs": [{"name": "a", "source": "/x"},
                   {"name": "a", "source": "/y"}]}, "duplicate"),
        ({"jobs": [{"name": "a", "source": "/x",
                    "retention": {"policy": "weekly"}}]},
         "unknown retention policy"),
        ({"jobs": [{"name": "a", "source": "/x",
                    "schedule": {"interval": -5}}]}, "interval"),
        ({"jobs": [{"name": "a", "source": "/x", "hooks":
                    {"pre": [{"builtin": "no-such"}]}}]}, "builtin"),
        ({"jobs": [{"name": "a", "source": "/x", "hooks":
                    {"failure_policy": "explode"}}]}, "failure_policy"),
        ({"jobs": [{"name": "a", "source": "/x",
                    "options": {"no_such_knob": 1}}]}, "options"),
        ({"jobs": []}, "no jobs"),
        ({}, "jobs"),
        ([], "mapping"),
    ])
    def test_bad_configs_raise(self, doc, fragment):
        with pytest.raises(ConfigError, match=fragment):
            parse_config(doc)

    def test_invalid_yaml_is_config_error(self):
        with pytest.raises(ConfigError, match="YAML"):
            loads_config("jobs: [unclosed\n  - ")

    def test_app_chunkers_validated_eagerly(self):
        with pytest.raises(ConfigError, match="mp3"):
            parse_config({"jobs": [{
                "name": "j", "source": "/x",
                # mp3 is COMPRESSED/WFC: no CDC stage to swap.
                "app_chunkers": {"mp3": "fastcdc"}}]})


# ----------------------------------------------------------------------
class TestSchedule:
    def test_occurrence_arithmetic(self):
        s = IntervalSchedule(3600, offset=600)
        assert s.first() == 600
        assert s.next_after(0) == 600
        assert s.next_after(600) == 4200
        assert s.next_after(4199.9) == 4200
        assert s.occurrences_until(599) == 0
        assert s.occurrences_until(600) == 1
        assert s.occurrences_until(4 * 3600) == 4

    def test_invalid_schedule(self):
        with pytest.raises(ConfigError):
            IntervalSchedule(0)
        with pytest.raises(ConfigError):
            IntervalSchedule(60, offset=-1)

    def test_job_clock_rolls_forward(self):
        clock = JobClock(IntervalSchedule(100))
        assert clock.due(0)
        clock.note_run(0, ok=True)
        assert clock.next_due == 100
        assert not clock.due(99)
        clock.note_run(100, ok=False)
        assert clock.failures == 1 and clock.consecutive_failures == 1
        clock.note_run(200, ok=True)
        assert clock.consecutive_failures == 0 and clock.runs == 3

    def test_unscheduled_job_never_due(self):
        clock = JobClock(None)
        assert clock.next_due is None and not clock.due(1e9)


# ----------------------------------------------------------------------
class TestRetentionPolicies:
    def test_retain_last_n_orders_by_timestamp(self):
        sessions = {0: 50.0, 1: 10.0, 2: 30.0}
        assert RetainLastN(2).select(sessions) == {0, 2}
        assert RetainLastN(10).select(sessions) == {0, 1, 2}

    def test_retain_last_ties_break_by_id(self):
        sessions = {3: 10.0, 4: 10.0, 5: 10.0}
        assert RetainLastN(2).select(sessions) == {4, 5}

    def test_max_age_keeps_recent_and_always_newest(self):
        sessions = {0: 0.0, 1: 100.0, 2: 200.0}
        assert RetainMaxAge(50).select(sessions, now=210.0) == {2}
        assert RetainMaxAge(150).select(sessions, now=210.0) == {1, 2}
        # Even when everything is "too old" the newest survives.
        assert RetainMaxAge(1).select(sessions, now=1e6) == {2}

    def test_invalid_policies(self):
        with pytest.raises(ConfigError):
            RetainLastN(0)
        with pytest.raises(ConfigError):
            RetainMaxAge(0)


# ----------------------------------------------------------------------
class TestHookExecution:
    def test_builtin_hooks(self):
        assert run_hook(HookSpec(builtin="noop"), {}).ok
        result = run_hook(HookSpec(builtin="fail"), {})
        assert not result.ok and "fail" in result.detail

    def test_shell_hook_success_and_failure(self):
        assert run_hook(HookSpec(command="true"), {}).ok
        result = run_hook(HookSpec(command="exit 3"), {})
        assert not result.ok and "exit 3" in result.detail

    def test_shell_hook_sees_job_env(self):
        result = run_hook(HookSpec(command='test "$REPRO_JOB" = docs'),
                          {"REPRO_JOB": "docs"})
        assert result.ok

    def test_hook_spec_needs_exactly_one_kind(self):
        with pytest.raises(ConfigError):
            HookSpec()
        with pytest.raises(ConfigError):
            HookSpec(command="true", builtin="noop")


def _job(name, hooks=None, **kwargs):
    kwargs.setdefault("source", SyntheticJobSource(name, files=3,
                                                   file_kib=16))
    if hooks is not None:
        kwargs["hooks"] = hooks
    return JobSpec(name=name, **kwargs)


def _service(*jobs, backend=None):
    # Build the ServiceSpec programmatically (JobSource instances are
    # not expressible in YAML).
    from repro.service.spec import ServiceSpec
    return BackupService(ServiceSpec(jobs=tuple(jobs)), backend=backend)


class TestHookSemantics:
    """The four pre/post × abort/warn behaviours (satellite: hooks)."""

    def test_failing_pre_hook_abort_skips_engine(self):
        svc = _service(_job("a", hooks=HookSet(
            pre=(HookSpec(builtin="fail"),), failure_policy="abort")))
        report = svc.run_once("a")
        svc.close()
        assert report.state == "FAILED"
        assert report.session_id is None and report.stats is None
        # The engine never ran: no manifest in the job's namespace.
        view = svc.jobs[0].view
        assert list(view.list(naming.MANIFEST_PREFIX)) == []
        assert "pre-hook" in report.error

    def test_failing_pre_hook_warn_still_runs(self):
        svc = _service(_job("a", hooks=HookSet(
            pre=(HookSpec(builtin="fail"),), failure_policy="warn")))
        report = svc.run_once("a")
        svc.close()
        assert report.state == "SUCCEEDED"
        assert report.session_id == 0
        assert len(report.hook_failures) == 1

    def test_failing_post_hook_abort_fails_after_success(self):
        svc = _service(_job("a", hooks=HookSet(
            post=(HookSpec(builtin="fail"),), failure_policy="abort")))
        report = svc.run_once("a")
        svc.close()
        assert report.state == "FAILED"
        # ... but the session itself completed: the manifest exists.
        view = svc.jobs[0].view
        assert list(view.list(naming.MANIFEST_PREFIX)) != []
        assert report.session_id == 0
        assert "post-hook" in report.error

    def test_failing_post_hook_warn_keeps_success(self):
        svc = _service(_job("a", hooks=HookSet(
            post=(HookSpec(builtin="fail"),), failure_policy="warn")))
        report = svc.run_once("a")
        svc.close()
        assert report.state == "SUCCEEDED"
        assert len(report.hook_failures) == 1

    def test_failed_job_sets_exit_code_one(self):
        svc = _service(
            _job("bad", hooks=HookSet(pre=(HookSpec(builtin="fail"),))),
            _job("good"))
        svc.run_all()
        report = svc.report()
        svc.close()
        assert report.exit_code == 1
        assert [r.state for r in report.reports] == \
            ["FAILED", "SUCCEEDED"]


# ----------------------------------------------------------------------
def _corpus(tag, size=40 * 1024):
    """Deterministic pseudo-random files, ≥ tiny threshold."""
    import zlib
    import numpy as np
    rng = np.random.default_rng(zlib.crc32(tag.encode()))
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


class TestServiceRunner:
    def _three_job_spec(self):
        from repro.service.spec import ServiceSpec
        return ServiceSpec(jobs=(
            JobSpec(name="docs",
                    source=SyntheticJobSource("docs", files=4,
                                              file_kib=16),
                    schedule=IntervalSchedule(3600),
                    retention=RetainLastN(2)),
            JobSpec(name="media", scheme="Avamar", chunker="fastcdc",
                    source=SyntheticJobSource("media", files=3,
                                              file_kib=24),
                    schedule=IntervalSchedule(7200, offset=600),
                    retention=RetainMaxAge(7200)),
            JobSpec(name="vm", chunker="seqcdc",
                    app_chunkers={"vmdk": "seqcdc"},
                    source=SyntheticJobSource("vm", files=2,
                                              file_kib=48),
                    schedule=IntervalSchedule(3600, offset=1800)),
        ))

    def _snapshot(self, backend):
        return {key: backend.get(key) for key in backend.list("")}

    def test_heterogeneous_jobs_share_one_backend(self):
        backend = InMemoryBackend()
        svc = BackupService(self._three_job_spec(), backend=backend)
        report = svc.run(until=4 * 3600)
        svc.close()
        assert report.exit_code == 0
        by_job = {}
        for r in report.reports:
            by_job.setdefault(r.job, []).append(r)
        assert set(by_job) == {"docs", "media", "vm"}
        # docs hourly (0..14400 -> 5 runs), media at 600+7800,
        # vm at 1800+5400+9000+12600.
        assert len(by_job["docs"]) == 5
        assert len(by_job["media"]) == 2
        assert len(by_job["vm"]) == 4
        # RetainLastN(2) on docs dropped old sessions through real GC.
        assert any(r.retention and r.retention.dropped
                   for r in by_job["docs"])
        # All three namespaces coexist on the one backend.
        namespaces = {key.split("/")[1]
                      for key in backend.list(naming.TENANT_PREFIX)}
        assert namespaces == {"docs", "media", "vm"}

    def test_scheduled_loop_is_deterministic(self):
        snaps = []
        for _ in range(2):
            backend = InMemoryBackend()
            svc = BackupService(self._three_job_spec(), backend=backend)
            svc.run(until=4 * 3600)
            svc.close()
            snaps.append(self._snapshot(backend))
        assert snaps[0] == snaps[1]

    def test_container_ids_stay_in_rank_stride(self):
        backend = InMemoryBackend()
        svc = BackupService(self._three_job_spec(), backend=backend)
        svc.run(until=2 * 3600)
        svc.close()
        stride = 1_000_000
        ranks = set()
        for key in backend.list(naming.CONTAINER_PREFIX):
            ranks.add(int(key[len(naming.CONTAINER_PREFIX):]) // stride)
        assert ranks  # docs (rank 0) uses containers
        assert ranks <= {0, 1, 2}

    def test_reinvocation_resumes_sessions_and_container_ids(self):
        backend = InMemoryBackend()
        spec = self._three_job_spec()
        svc = BackupService(spec, backend=backend)
        svc.run(until=3600)
        first_sessions = {r.job: r.session_id for r in svc.reports}
        containers_before = set(backend.list(naming.CONTAINER_PREFIX))
        svc.close()
        # Fresh service over the same backend = a new CLI invocation.
        svc2 = BackupService(self._three_job_spec(), backend=backend)
        report = svc2.run_once("docs")
        svc2.close()
        assert report.session_id == first_sessions["docs"] + 1
        # New containers continue above the old ids, never clobber.
        assert containers_before <= \
            set(backend.list(naming.CONTAINER_PREFIX))

    def test_job_subset_keeps_spec_rank(self):
        backend = InMemoryBackend()
        svc = BackupService(self._three_job_spec(), backend=backend,
                            jobs=["vm"])
        svc.run_once("vm")
        svc.close()
        # vm is rank 2 in the spec even when run alone.
        vm_containers = [
            int(key[len(naming.CONTAINER_PREFIX):])
            for key in backend.list(naming.CONTAINER_PREFIX)]
        assert vm_containers
        assert all(2_000_000 <= c < 3_000_000 for c in vm_containers)

    def test_unknown_job_selection_raises(self):
        with pytest.raises(ConfigError, match="no job named"):
            BackupService(self._three_job_spec(),
                          backend=InMemoryBackend(), jobs=["nope"])

    def test_restore_is_bit_exact_through_job_view(self):
        files = {"docs/a.doc": _corpus("a"), "docs/b.txt": _corpus("b")}
        backend = InMemoryBackend()
        svc = _service(
            JobSpec(name="j", source=CallableJobSource(
                lambda run: MemorySource(dict(files)))),
            backend=backend)
        report = svc.run_once("j")
        svc.close()
        assert report.state == "SUCCEEDED"
        view = NamespacedBackend(backend, "j")
        restored, _ = RestoreClient(view).restore_to_memory(
            report.session_id)
        assert restored == files


# ----------------------------------------------------------------------
class TestRetentionDrivenGC:
    """Satellite: retention-driven GC churn on a shared backend."""

    def _shared_files(self):
        return {"shared/big.doc": _corpus("shared", 64 * 1024)}

    def _spec(self):
        from repro.service.spec import ServiceSpec
        shared = self._shared_files()

        def job_a(run):
            files = dict(shared)
            # Private content that changes every run: dropping an old
            # session makes its private chunks garbage.
            files["private/a.doc"] = _corpus(f"a-{run}", 32 * 1024)
            return MemorySource(files)

        def job_b(run):
            return MemorySource(dict(shared))

        # Containerless scheme: chunks land in the *shared* chunks/
        # pool, so identical content is stored once for both jobs and
        # cross-job liveness is a real constraint.
        return ServiceSpec(jobs=(
            JobSpec(name="a", scheme="Avamar",
                    source=CallableJobSource(job_a),
                    retention=RetainLastN(2)),
            JobSpec(name="b", scheme="Avamar",
                    source=CallableJobSource(job_b)),
        ))

    def test_retention_never_deletes_sessions_another_job_needs(self):
        backend = InMemoryBackend()
        svc = BackupService(self._spec(), backend=backend)
        svc.run_once("b")                      # b pins the shared chunks
        reports = [svc.run_once("a") for _ in range(3)]
        svc.close()
        last = reports[-1]
        assert last.retention is not None
        assert last.retention.dropped == [0]
        assert last.retention.retained == [1, 2]
        assert last.retention.swept      # run-0 private chunks died
        assert not last.retention.problems
        # b's session still restores bit-exact: the shared chunks the
        # dropped a-session also referenced were never collected.
        view_b = NamespacedBackend(backend, "b")
        restored, _ = RestoreClient(view_b).restore_to_memory(0)
        assert restored == self._shared_files()
        # a's retained sessions survived too.
        view_a = NamespacedBackend(backend, "a")
        for sid in (1, 2):
            RestoreClient(view_a).restore_to_memory(sid)

    def test_data_deleting_sweep_bumps_tenant_statcache_epochs(self):
        backend = InMemoryBackend()
        svc = BackupService(self._spec(), backend=backend)
        svc.run_once("b")
        view_b = NamespacedBackend(backend, "b")
        epoch_before = read_epoch(view_b)
        for _ in range(3):
            report = svc.run_once("a")
        svc.close()
        assert report.retention.swept
        assert report.retention.statcache_invalidated
        # Every tenant's epoch moved, not just the job that ran GC.
        assert read_epoch(view_b) > epoch_before
        view_a = NamespacedBackend(backend, "a")
        assert read_epoch(view_a) > 0

    def test_manifest_only_drop_keeps_caches_warm(self):
        from repro.service.spec import ServiceSpec
        shared = self._shared_files()
        backend = InMemoryBackend()
        # Both jobs back up identical content; dropping one session
        # deletes no data (everything stays referenced), so stat caches
        # must not be invalidated.
        svc = BackupService(ServiceSpec(jobs=(
            JobSpec(name="a", scheme="Avamar",
                    source=CallableJobSource(
                        lambda run: MemorySource(dict(shared))),
                    retention=RetainLastN(1)),
        )), backend=backend)
        svc.run_once("a")
        report = svc.run_once("a")
        svc.close()
        assert report.retention.dropped == [0]
        assert not report.retention.swept
        assert not report.retention.statcache_invalidated


# ----------------------------------------------------------------------
class TestPerAppChunkers:
    """Satellite: per-application chunker selection via the job spec."""

    def _vm_files(self):
        return {
            "disk.vmdk": _corpus("vmdk", 96 * 1024),
            "report.doc": _corpus("doc", 48 * 1024),
        }

    def test_restore_parity_with_app_chunker_override(self):
        files = self._vm_files()
        snaps = {}
        for label, app_chunkers in (("default", {}),
                                    ("seqcdc", {"vmdk": "seqcdc"})):
            backend = InMemoryBackend()
            svc = _service(
                JobSpec(name="vm", app_chunkers=app_chunkers,
                        source=CallableJobSource(
                            lambda run: MemorySource(dict(files)))),
                backend=backend)
            report = svc.run_once("vm")
            svc.close()
            assert report.state == "SUCCEEDED"
            view = NamespacedBackend(backend, "vm")
            restored, rep = RestoreClient(view).restore_to_memory(0)
            # Bit-exact restore regardless of the boundary engine:
            # chunk identity lives in the manifest, not the config.
            assert restored == files
            snaps[label] = rep.chunks_verified
        # The override actually changed the chunking (different
        # boundary engine => different extent population).
        assert snaps["default"] != snaps["seqcdc"]

    def test_app_chunker_determinism_across_runs(self):
        files = self._vm_files()
        payloads = []
        for _ in range(2):
            backend = InMemoryBackend()
            svc = _service(
                JobSpec(name="vm", app_chunkers={"vmdk": "seqcdc"},
                        source=CallableJobSource(
                            lambda run: MemorySource(dict(files)))),
                backend=backend)
            svc.run_once("vm")
            svc.close()
            payloads.append({key: backend.get(key)
                             for key in backend.list("")})
        assert payloads[0] == payloads[1]
