"""Tests for secure (convergent) deduplication — the paper's future work."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import InMemoryBackend
from repro.core import (
    BackupClient,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
)
from repro.core import naming
from repro.errors import BackupError, ConfigError, IntegrityError, RestoreError
from repro.secure import (
    ConvergentCipher,
    WRAPPED_KEY_LEN,
    chunk_key,
    unwrap_key,
    wrap_key,
)
from repro.util.units import KIB

MASTER = b"correct horse battery staple....".ljust(32, b"\0")
OTHER = b"completely different master key!".ljust(32, b"\0")


class TestConvergentCipher:
    def test_roundtrip(self):
        plain = b"the quick brown fox" * 100
        cipher, key = ConvergentCipher.seal(plain)
        assert cipher != plain
        assert ConvergentCipher.decrypt(cipher, key) == plain

    def test_deterministic_equal_plaintexts(self):
        # The property dedup rests on: equal plaintexts anywhere, by any
        # client, produce equal ciphertexts.
        a, _ = ConvergentCipher.seal(b"shared content block")
        b, _ = ConvergentCipher.seal(b"shared content block")
        assert a == b

    def test_distinct_plaintexts_distinct_ciphertexts(self):
        a, _ = ConvergentCipher.seal(b"content A")
        b, _ = ConvergentCipher.seal(b"content B")
        assert a != b

    def test_length_preserving(self):
        for n in (0, 1, 63, 64, 65, 10_000):
            cipher, _ = ConvergentCipher.seal(bytes(n))
            assert len(cipher) == n

    def test_key_is_content_hash(self):
        assert chunk_key(b"x") == chunk_key(b"x")
        assert chunk_key(b"x") != chunk_key(b"y")

    @given(st.binary(max_size=5000))
    @settings(max_examples=40)
    def test_property_roundtrip(self, plain):
        cipher, key = ConvergentCipher.seal(plain)
        assert ConvergentCipher.decrypt(cipher, key) == plain
        if len(plain) >= 8:
            assert cipher != plain  # overwhelmingly likely


class TestKeyWrapping:
    def test_roundtrip(self):
        key = chunk_key(b"some chunk")
        fp = b"\x01" * 20
        wrapped = wrap_key(key, MASTER, fp)
        assert len(wrapped) == WRAPPED_KEY_LEN
        assert unwrap_key(wrapped, MASTER, fp) == key

    def test_wrong_master_detected(self):
        wrapped = wrap_key(chunk_key(b"c"), MASTER, b"\x02" * 20)
        with pytest.raises(IntegrityError):
            unwrap_key(wrapped, OTHER, b"\x02" * 20)

    def test_wrong_fingerprint_binding_detected(self):
        wrapped = wrap_key(chunk_key(b"c"), MASTER, b"\x02" * 20)
        with pytest.raises(IntegrityError):
            unwrap_key(wrapped, MASTER, b"\x03" * 20)

    def test_tampered_wrap_detected(self):
        wrapped = bytearray(wrap_key(chunk_key(b"c"), MASTER, b"\x04" * 20))
        wrapped[0] ^= 1
        with pytest.raises(IntegrityError):
            unwrap_key(bytes(wrapped), MASTER, b"\x04" * 20)

    def test_length_checked(self):
        with pytest.raises(IntegrityError):
            unwrap_key(b"short", MASTER, b"\x05" * 20)
        with pytest.raises(ValueError):
            wrap_key(b"short", MASTER, b"\x05" * 20)


@pytest.fixture()
def files(rng):
    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    doc = blob(40_000)
    return {
        "a.doc": doc,
        "a_copy.doc": doc,
        "m.mp3": blob(30_000),
        "v.vmdk": blob(50_000),
        "t.txt": blob(200),
    }


def secure_client(cloud):
    return BackupClient(cloud,
                        aa_dedupe_config(encrypt_chunks=True,
                                         container_size=32 * KIB),
                        master_key=MASTER)


class TestSecureBackup:
    def test_roundtrip_with_key(self, files):
        cloud = InMemoryBackend()
        secure_client(cloud).backup(MemorySource(files))
        restored, report = RestoreClient(
            cloud, master_key=MASTER).restore_to_memory(0)
        assert restored == files
        assert report.chunks_verified > 0

    def test_restore_without_key_refused(self, files):
        cloud = InMemoryBackend()
        secure_client(cloud).backup(MemorySource(files))
        with pytest.raises(RestoreError):
            RestoreClient(cloud).restore_to_memory(0)

    def test_restore_with_wrong_key_detected(self, files):
        cloud = InMemoryBackend()
        secure_client(cloud).backup(MemorySource(files))
        with pytest.raises(IntegrityError):
            RestoreClient(cloud, master_key=OTHER).restore_to_memory(0)

    def test_no_plaintext_in_cloud(self, files):
        cloud = InMemoryBackend()
        secure_client(cloud).backup(MemorySource(files))
        blob = b"".join(cloud._objects[k]
                        for k in cloud.list(naming.CONTAINER_PREFIX))
        for path, data in files.items():
            assert data[:64] not in blob, path

    def test_dedup_preserved_under_encryption(self, files):
        cloud = InMemoryBackend()
        client = secure_client(cloud)
        s1 = client.backup(MemorySource(files))
        # Duplicate file dedups within the session...
        assert s1.bytes_saved >= 40_000
        # ...and everything dedups across sessions.
        s2 = client.backup(MemorySource(files))
        assert s2.chunks_unique == 0

    def test_cross_client_dedup_without_shared_master(self, files):
        # Convergent encryption's defining property: two clients with
        # different master keys still produce identical ciphertexts, so
        # cross-client dedup works — each restores with its own master.
        cloud = InMemoryBackend()
        c1 = BackupClient(cloud, aa_dedupe_config(
            encrypt_chunks=True, container_size=32 * KIB),
            master_key=MASTER)
        c1.backup(MemorySource(files))
        c2 = BackupClient(cloud, aa_dedupe_config(
            encrypt_chunks=True, container_size=32 * KIB),
            master_key=OTHER)
        c2.resume_from_cloud()
        stats = c2.backup(MemorySource(files), session_id=1)
        assert stats.chunks_unique == 0  # full cross-client dedup
        restored, _ = RestoreClient(cloud,
                                    master_key=OTHER).restore_to_memory(1)
        assert restored == files

    def test_missing_master_key_rejected_at_construction(self):
        with pytest.raises(BackupError):
            BackupClient(InMemoryBackend(),
                         aa_dedupe_config(encrypt_chunks=True))

    def test_incompatible_with_incremental(self):
        from repro.baselines import jungle_disk_config
        with pytest.raises(ConfigError):
            jungle_disk_config(encrypt_chunks=True)

    def test_recipe_carries_wrapped_keys(self, files):
        cloud = InMemoryBackend()
        client = secure_client(cloud)
        client.backup(MemorySource(files))
        manifest = client.manifests[0]
        for entry in manifest:
            for ref in entry.refs:
                assert ref.wrapped_key is not None
                assert len(ref.wrapped_key) == WRAPPED_KEY_LEN
        # ...and they survive JSON round-tripping.
        from repro.core.recipe import Manifest
        clone = Manifest.from_json(manifest.to_json())
        ref = next(iter(clone)).refs[0]
        assert ref.wrapped_key is not None
