"""Tests for the chunk-index substrate: entries, memory, disk, cache,
Bloom filter, and the application-aware composite."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index import (
    AppAwareIndex,
    BloomFilter,
    DiskIndex,
    IndexEntry,
    LRUCache,
    MemoryIndex,
)


def fp(i: int, size: int = 20) -> bytes:
    """Deterministic fingerprint for test item ``i``."""
    return hashlib.sha1(str(i).encode()).digest()[:size]


def entry(i: int, **kw) -> IndexEntry:
    return IndexEntry(fingerprint=fp(i), container_id=kw.get("cid", i // 10),
                      offset=kw.get("offset", i * 100),
                      length=kw.get("length", 100),
                      refcount=kw.get("refcount", 1))


class TestIndexEntry:
    def test_pack_unpack_roundtrip(self):
        e = entry(42)
        assert IndexEntry.unpack(e.pack()) == e

    def test_pack_unpack_short_fingerprint(self):
        e = IndexEntry(fingerprint=b"\x01" * 12, container_id=7, offset=3,
                       length=9, refcount=2)
        assert IndexEntry.unpack(e.pack()) == e

    def test_record_size_fixed(self):
        assert len(entry(1).pack()) == IndexEntry.RECORD_SIZE

    def test_invalid_fingerprint_length(self):
        with pytest.raises(IndexError_):
            IndexEntry(fingerprint=b"", container_id=0, offset=0, length=0)
        with pytest.raises(IndexError_):
            IndexEntry(fingerprint=b"x" * 21, container_id=0, offset=0,
                       length=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(IndexError_):
            IndexEntry(fingerprint=b"x", container_id=-1, offset=0, length=0)

    def test_bumped(self):
        assert entry(1).bumped(3).refcount == 4

    @given(st.binary(min_size=1, max_size=20), st.integers(0, 2**40),
           st.integers(0, 2**40), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_property_roundtrip(self, fingerprint, cid, off, length):
        e = IndexEntry(fingerprint, cid, off, length)
        assert IndexEntry.unpack(e.pack()) == e


class TestMemoryIndex:
    def test_miss_then_hit(self):
        idx = MemoryIndex()
        assert idx.lookup(fp(1)) is None
        idx.insert(entry(1))
        assert idx.lookup(fp(1)) == entry(1)

    def test_replace(self):
        idx = MemoryIndex()
        idx.insert(entry(1))
        idx.insert(entry(1, refcount=5))
        assert idx.lookup(fp(1)).refcount == 5
        assert len(idx) == 1

    def test_stats(self):
        idx = MemoryIndex()
        idx.insert(entry(1))
        idx.lookup(fp(1))
        idx.lookup(fp(2))
        assert idx.stats.lookups == 2
        assert idx.stats.hits == 1
        assert idx.stats.inserts == 1
        # The miss is not a memory "hit" — only the served lookup is.
        assert idx.stats.memory_hits == 1

    def test_generation_bumps_on_every_insert(self):
        idx = MemoryIndex()
        assert idx.generation == 0
        idx.insert(entry(1))
        idx.insert(entry(1, refcount=5))  # same key: still a mutation
        assert idx.generation == 2

    def test_entries_iteration(self):
        idx = MemoryIndex()
        for i in range(5):
            idx.insert(entry(i))
        assert {e.fingerprint for e in idx.entries()} == {fp(i)
                                                          for i in range(5)}


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(capacity=500, fp_rate=0.01)
        items = [fp(i) for i in range(500)]
        for item in items:
            bf.add(item)
        assert all(bf.might_contain(item) for item in items)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(capacity=1000, fp_rate=0.01)
        for i in range(1000):
            bf.add(fp(i))
        fps = sum(bf.might_contain(fp(i)) for i in range(1000, 6000))
        assert fps / 5000 < 0.05  # generous bound over nominal 1%

    def test_serialisation_roundtrip(self):
        bf = BloomFilter(capacity=100)
        for i in range(100):
            bf.add(fp(i))
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert clone.num_bits == bf.num_bits
        assert all(clone.might_contain(fp(i)) for i in range(100))
        assert clone.count == 100

    def test_expected_fp_rate_grows(self):
        bf = BloomFilter(capacity=100, fp_rate=0.01)
        assert bf.expected_fp_rate() == 0.0
        for i in range(100):
            bf.add(fp(i))
        assert 0.0 < bf.expected_fp_rate() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, fp_rate=1.5)

    # -- regression: round-trip used to lose fp_rate (came back 0.0,
    # -- breaking any resized clone) and accepted truncated blobs ------
    def test_roundtrip_preserves_fp_rate(self):
        bf = BloomFilter(capacity=64, fp_rate=0.003)
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert clone.fp_rate == 0.003
        # The restored rate must satisfy the constructor invariant so a
        # grow/rebuild cycle can reuse it directly.
        BloomFilter(capacity=clone.capacity * 2, fp_rate=clone.fp_rate)

    def test_from_bytes_rejects_garbage(self):
        bf = BloomFilter(capacity=32)
        blob = bf.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"")                  # empty
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob[:10])            # short header
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob[:-1])            # short bit array
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob + b"x")          # trailing junk
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"NOPE" + blob[4:])   # foreign magic

    @given(st.integers(1, 2000),
           st.floats(0.0005, 0.2),
           st.lists(st.binary(min_size=1, max_size=32), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_is_lossless(self, capacity, rate, items):
        bf = BloomFilter(capacity=capacity, fp_rate=rate)
        for item in items:
            bf.add(item)
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert (clone.capacity, clone.fp_rate, clone.num_bits,
                clone.num_hashes, clone.count) == \
            (bf.capacity, bf.fp_rate, bf.num_bits, bf.num_hashes, bf.count)
        assert clone.to_bytes() == bf.to_bytes()
        assert all(clone.might_contain(item) for item in items)

    @given(st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_property_arbitrary_bytes_never_return_broken_filter(self, blob):
        # Anything from_bytes accepts must behave like a real filter;
        # everything else must raise ValueError, never crash or return
        # a filter with out-of-invariant fields.
        try:
            bf = BloomFilter.from_bytes(blob)
        except ValueError:
            return
        assert bf.capacity >= 1 and 0.0 < bf.fp_rate < 1.0
        bf.add(b"probe")
        assert bf.might_contain(b"probe")


class TestDiskIndex:
    def test_basic_roundtrip(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=100)
        idx.insert(entry(1))
        assert idx.lookup(fp(1)) == entry(1)

    def test_flush_and_reopen(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=1000)
        for i in range(50):
            idx.insert(entry(i))
        idx.close()
        reopened = DiskIndex(tmp_path)
        for i in range(50):
            assert reopened.lookup(fp(i)) == entry(i)
        assert len(reopened) == 50

    def test_memtable_spill_creates_runs(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=10)
        for i in range(35):
            idx.insert(entry(i))
        assert len(list(tmp_path.glob("run-*.idx"))) >= 3
        for i in range(35):
            assert idx.lookup(fp(i)) is not None

    def test_disk_probes_accounted(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=10)
        for i in range(20):
            idx.insert(entry(i))
        idx.flush()
        before = idx.stats.disk_probes
        assert idx.lookup(fp(0)) is not None
        assert idx.stats.disk_probes > before

    def test_bloom_avoids_probes_on_miss(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=10)
        for i in range(20):
            idx.insert(entry(i))
        idx.flush()
        before = idx.stats.disk_probes
        misses = sum(idx.lookup(fp(i)) is None for i in range(10_000, 10_200))
        assert misses == 200
        # Bloom filters should have rejected nearly every run probe.
        assert idx.stats.disk_probes - before < 200

    def test_newest_version_wins(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=5)
        for i in range(10):
            idx.insert(entry(i))
        idx.flush()
        idx.insert(entry(3, refcount=9))
        idx.flush()
        assert idx.lookup(fp(3)).refcount == 9

    def test_compaction_preserves_content(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=5, max_runs=3)
        for i in range(60):
            idx.insert(entry(i))
        idx.flush()
        assert len(list(tmp_path.glob("run-*.idx"))) <= 4
        for i in range(60):
            assert idx.lookup(fp(i)) == entry(i)
        assert len(idx) == 60

    def test_entries_shadowing(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=5)
        for i in range(10):
            idx.insert(entry(i))
        idx.flush()
        idx.insert(entry(2, refcount=7))
        found = {e.fingerprint: e for e in idx.entries()}
        assert found[fp(2)].refcount == 7
        assert len(found) == 10

    def test_validation(self, tmp_path):
        with pytest.raises(IndexError_):
            DiskIndex(tmp_path, memtable_limit=0)

    def test_miss_is_not_a_memory_hit(self, tmp_path):
        # Regression: a negative lookup on a run-less index used to be
        # counted as a memory hit, inflating the RAM-residency ratio.
        idx = DiskIndex(tmp_path, memtable_limit=100)
        assert idx.lookup(fp(1)) is None
        assert idx.stats.memory_hits == 0
        assert idx.stats.hits == 0
        # The same negative lookup against on-disk runs is no hit either.
        for i in range(20):
            idx.insert(entry(i))
        idx.flush()
        before = idx.stats.memory_hits
        assert idx.lookup(fp(10_000)) is None
        assert idx.stats.memory_hits == before

    @pytest.mark.parametrize("memtable_limit", [4, 1000])
    def test_hit_miss_invariants(self, tmp_path, memtable_limit):
        # memory_hits <= hits <= lookups must hold through any mix of
        # memtable hits, run probes, Bloom negatives and plain misses.
        idx = DiskIndex(tmp_path, memtable_limit=memtable_limit)
        for i in range(30):
            idx.insert(entry(i))
        hits = sum(idx.lookup(fp(i)) is not None for i in range(60))
        assert hits == 30
        stats = idx.stats
        assert stats.memory_hits <= stats.hits <= stats.lookups
        assert stats.hits == 30
        assert stats.lookups == 60

    def test_probe_reuses_cached_handle(self, tmp_path, monkeypatch):
        # Perf regression guard: run probes must not pay an open(2) per
        # lookup — the handle opens once per run and is reused.
        idx = DiskIndex(tmp_path, memtable_limit=5, bloom_fp_rate=0.5)
        for i in range(20):
            idx.insert(entry(i))
        idx.flush()
        import builtins
        opens = []
        real_open = builtins.open

        def counting_open(file, *args, **kwargs):
            opens.append(str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", counting_open)
        for _ in range(3):
            for i in range(20):
                assert idx.lookup(fp(i)) is not None
        run_opens = [f for f in opens if f.endswith(".idx")]
        assert len(run_opens) <= len(list(tmp_path.glob("run-*.idx")))

    def test_close_releases_handles_and_reopens(self, tmp_path):
        idx = DiskIndex(tmp_path, memtable_limit=5)
        for i in range(12):
            idx.insert(entry(i))
        idx.flush()
        assert idx.lookup(fp(1)) is not None  # handles now open
        runs = list(idx._runs)
        assert any(run._fh is not None for run in runs)
        idx.close()
        assert all(run._fh is None for run in runs)
        reopened = DiskIndex(tmp_path)
        assert reopened.lookup(fp(1)) == entry(1)
        reopened.close()


class TestLRUCache:
    def test_hit_after_insert(self, tmp_path):
        cache = LRUCache(MemoryIndex(), capacity=10)
        cache.insert(entry(1))
        assert cache.lookup(fp(1)) == entry(1)
        assert cache.cache_hits == 1

    def test_eviction(self):
        cache = LRUCache(MemoryIndex(), capacity=3)
        for i in range(5):
            cache.insert(entry(i))
        # 0 and 1 evicted from cache but present in backing.
        assert cache.lookup(fp(0)) == entry(0)
        assert cache.cache_misses >= 1

    def test_miss_populates_cache(self):
        backing = MemoryIndex()
        backing.insert(entry(7))
        cache = LRUCache(backing, capacity=4)
        cache.lookup(fp(7))
        backing_lookups = backing.stats.lookups
        cache.lookup(fp(7))
        assert backing.stats.lookups == backing_lookups  # served from cache

    def test_hit_ratio(self):
        cache = LRUCache(MemoryIndex(), capacity=4)
        cache.insert(entry(1))
        cache.lookup(fp(1))
        cache.lookup(fp(2))
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(MemoryIndex(), capacity=0)


class TestAppAwareIndex:
    def test_per_app_isolation(self):
        aa = AppAwareIndex()
        aa.insert("mp3", entry(1))
        assert aa.lookup("mp3", fp(1)) is not None
        # Same fingerprint under a different app label: independent index.
        assert aa.lookup("doc", fp(1)) is None

    def test_sizes_and_len(self):
        aa = AppAwareIndex()
        for i in range(4):
            aa.insert("mp3", entry(i))
        for i in range(10, 13):
            aa.insert("doc", entry(i))
        assert aa.sizes() == {"mp3": 4, "doc": 3}
        assert len(aa) == 7
        assert aa.apps == ["doc", "mp3"]

    def test_entries_tagged_with_app(self):
        aa = AppAwareIndex()
        aa.insert("txt", entry(5))
        assert list(aa.entries()) == [("txt", entry(5))]

    def test_combined_stats(self):
        aa = AppAwareIndex()
        aa.insert("a", entry(1))
        aa.lookup("a", fp(1))
        aa.lookup("b", fp(2))
        stats = aa.combined_stats()
        assert stats.lookups == 2 and stats.hits == 1 and stats.inserts == 1

    def test_reset_stats(self):
        aa = AppAwareIndex()
        aa.insert("a", entry(1))
        aa.reset_stats()
        assert aa.combined_stats().lookups == 0

    def test_batch_serial_and_parallel_agree(self):
        aa = AppAwareIndex(max_workers=3)
        for i in range(30):
            aa.insert(f"app{i % 3}", entry(i))
        queries = [(f"app{i % 3}", fp(i)) for i in range(40)]
        serial = aa.lookup_batch(queries, parallel=False)
        parallel = aa.lookup_batch(queries, parallel=True)
        assert serial == parallel
        assert sum(e is not None for e in serial) == 30
        aa.close()

    def test_custom_factory(self, tmp_path):
        aa = AppAwareIndex(
            factory=lambda app: DiskIndex(tmp_path / app, memtable_limit=4))
        for i in range(10):
            aa.insert("vmdk", entry(i))
        aa.flush()
        assert (tmp_path / "vmdk").exists()
        assert aa.lookup("vmdk", fp(3)) == entry(3)
        aa.close()

    def test_approximate_bytes_grows(self):
        aa = AppAwareIndex()
        base = aa.approximate_bytes()
        aa.insert("a", entry(1))
        assert aa.approximate_bytes() > base
