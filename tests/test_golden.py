"""Golden-file tests: profile rendering and one benchmark table.

Each golden under ``tests/golden/`` is byte-compared against output
regenerated from a fully seeded, virtual-clock recipe, so any change to
trace semantics, profile aggregation, table formatting, or the workload
model shows up as a reviewable diff.  Regenerate after an intentional
change with::

    PYTHONPATH=src python tests/test_golden.py --regen
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis import table1_redundancy
from repro.cli import main
from repro.cloud import InMemoryBackend, SimulatedCloud
from repro.core import BackupClient, MemorySource, aa_dedupe_config
from repro.metrics import Table
from repro.obs import MetricsRegistry, Tracer, load_spans, render_profile
from repro.simulate.clock import VirtualClock
from repro.util.units import KIB

GOLDEN_DIR = Path(__file__).parent / "golden"
TRACE_GOLDEN = GOLDEN_DIR / "session_trace.jsonl"
PROFILE_GOLDEN = GOLDEN_DIR / "trace_profile.txt"
TABLE1_GOLDEN = GOLDEN_DIR / "table1_small.txt"



def _golden_dataset():
    rng = np.random.default_rng(0xAA)

    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    doc = blob(60_000)
    return {
        "music/song.mp3": blob(50_000),
        "docs/report.doc": doc,
        "docs/report_v2.doc": doc[:30_000] + b"EDITED" + doc[30_000:],
        "vm/image.vmdk": blob(100_000),
        "misc/readme.txt": blob(12_000),
        "misc/tiny.txt": blob(512),
    }


def generate_trace_jsonl() -> str:
    """One AA-Dedupe session on a virtual clock, traced; returns JSONL.

    A simulated run has no wall-clock inputs at all (manifests are
    stamped with virtual time), so the byte-identical comparison doubles
    as a guard against wall-clock state leaking into simulation output.
    """
    clock = VirtualClock()
    tracer = Tracer(clock=clock, metrics=MetricsRegistry())
    cloud = SimulatedCloud(InMemoryBackend(), clock=clock,
                           tracer=tracer)
    client = BackupClient(
        cloud, aa_dedupe_config(container_size=64 * KIB),
        tracer=tracer)
    client.backup(MemorySource(_golden_dataset()))
    client.close()
    return tracer.export_jsonl()


def generate_table1_text() -> str:
    """Small-scale Table 1 rendered exactly like the bench harness."""
    rows = table1_redundancy(total_bytes=12_000_000, seed=2011)
    table = Table(["app", "dataset", "SC DR", "CDC DR"],
                  title="Table 1 (12MB synthetic): sub-file redundancy "
                        "by application")
    for r in rows:
        table.add_row([r.app, f"{r.dataset_bytes / 1e6:.2f}MB",
                       f"{r.sc_dr:.3f}", f"{r.cdc_dr:.3f}"])
    return table.render() + "\n"


# ---------------------------------------------------------------------------
class TestTraceProfileGolden:
    def test_trace_regenerates_byte_identically(self):
        assert generate_trace_jsonl() == TRACE_GOLDEN.read_text()

    def test_render_matches_golden(self):
        spans = load_spans(TRACE_GOLDEN.read_text())
        assert render_profile(spans) + "\n" == PROFILE_GOLDEN.read_text()

    def test_cli_trace_profile_matches_golden(self, capsys):
        assert main(["trace-profile", str(TRACE_GOLDEN)]) == 0
        assert capsys.readouterr().out == PROFILE_GOLDEN.read_text()

    def test_cli_trace_profile_missing_file(self, capsys):
        assert main(["trace-profile", str(GOLDEN_DIR / "nope.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_golden_profile_sums_to_window(self):
        from repro.obs import stage_breakdown

        profile = stage_breakdown(load_spans(TRACE_GOLDEN.read_text()))
        assert profile.window_seconds > 0
        assert profile.accounted_seconds == pytest.approx(
            profile.window_seconds, abs=1e-9)


class TestBenchTableGolden:
    def test_table1_small_matches_golden(self):
        assert generate_table1_text() == TABLE1_GOLDEN.read_text()


# ---------------------------------------------------------------------------
if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("usage: python tests/test_golden.py --regen")
    GOLDEN_DIR.mkdir(exist_ok=True)
    TRACE_GOLDEN.write_text(generate_trace_jsonl())
    PROFILE_GOLDEN.write_text(
        render_profile(load_spans(TRACE_GOLDEN.read_text())) + "\n")
    TABLE1_GOLDEN.write_text(generate_table1_text())
    print(f"regenerated goldens under {GOLDEN_DIR}")
