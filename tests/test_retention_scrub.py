"""Tests for retention policies, cloud scrubbing, and client resume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, aa_dedupe_config
from repro.core import naming
from repro.core.retention import GFSPolicy, keep_last
from repro.core.scrub import scrub_cloud

_DAY = 86_400.0


class TestKeepLast:
    def test_basic(self):
        assert keep_last([3, 1, 7, 5], 2) == {5, 7}

    def test_more_than_available(self):
        assert keep_last([1, 2], 10) == {1, 2}

    def test_zero_or_negative(self):
        assert keep_last([1, 2, 3], 0) == set()
        assert keep_last([1, 2, 3], -1) == set()

    def test_empty(self):
        assert keep_last([], 5) == set()

    @given(st.sets(st.integers(0, 1000), max_size=50), st.integers(1, 10))
    @settings(max_examples=30)
    def test_property_newest_kept(self, ids, count):
        retained = keep_last(ids, count)
        assert len(retained) == min(count, len(ids))
        if ids:
            assert max(ids) in retained
            # Everything retained is newer than everything dropped.
            dropped = ids - retained
            if dropped and retained:
                assert min(retained) > max(dropped)


class TestGFSPolicy:
    def make_sessions(self, days: int) -> dict:
        # One session per day, id == day number, newest last.
        return {day: day * _DAY for day in range(days)}

    def test_daily_tier(self):
        sessions = self.make_sessions(30)
        retain = GFSPolicy(daily=7, weekly=0, monthly=0).apply(sessions)
        assert retain == {23, 24, 25, 26, 27, 28, 29}

    def test_weekly_tier_picks_newest_per_week(self):
        sessions = self.make_sessions(30)
        retain = GFSPolicy(daily=0, weekly=3, monthly=0).apply(sessions)
        assert retain == {29, 22, 15}

    def test_monthly_tier(self):
        sessions = self.make_sessions(70)
        retain = GFSPolicy(daily=0, weekly=0, monthly=2).apply(sessions)
        assert retain == {69, 39}

    def test_tiers_union(self):
        sessions = self.make_sessions(70)
        policy = GFSPolicy(daily=2, weekly=2, monthly=2)
        union = policy.apply(sessions)
        for d, w, m in ((2, 0, 0), (0, 2, 0), (0, 0, 2)):
            assert GFSPolicy(d, w, m).apply(sessions) <= union

    def test_empty(self):
        assert GFSPolicy().apply({}) == set()

    def test_newest_always_kept(self):
        sessions = self.make_sessions(10)
        assert 9 in GFSPolicy(daily=1, weekly=0, monthly=0).apply(sessions)


@pytest.fixture()
def populated_cloud(rng):
    files = {
        "m/a.mp3": rng.integers(0, 256, 30_000, dtype=np.uint8).tobytes(),
        "d/r.doc": rng.integers(0, 256, 25_000, dtype=np.uint8).tobytes(),
        "t/t.txt": b"small",
    }
    cloud = InMemoryBackend()
    client = BackupClient(cloud, aa_dedupe_config(container_size=32 * 1024))
    client.backup(MemorySource(files))
    return cloud, client, files


class TestScrub:
    def test_clean_store(self, populated_cloud):
        cloud, _client, _files = populated_cloud
        report = scrub_cloud(cloud)
        assert report.clean
        assert report.containers_checked >= 1
        assert report.extents_verified >= 3
        assert report.manifests_checked == 1
        assert report.refs_resolved >= 3
        assert report.index_replicas_checked >= 2

    def test_detects_corrupt_container(self, populated_cloud):
        cloud, _client, _files = populated_cloud
        key = cloud.list(naming.CONTAINER_PREFIX)[0]
        blob = bytearray(cloud._objects[key])
        blob[100] ^= 0x55
        cloud._objects[key] = bytes(blob)
        report = scrub_cloud(cloud)
        assert not report.clean
        assert any("CRC" in p or key in p for p in report.problems)

    def test_detects_missing_container(self, populated_cloud):
        cloud, _client, _files = populated_cloud
        key = cloud.list(naming.CONTAINER_PREFIX)[0]
        cloud._objects.pop(key)
        report = scrub_cloud(cloud)
        assert not report.clean
        assert any("missing container" in p for p in report.problems)

    def test_detects_truncated_index_replica(self, populated_cloud):
        cloud, _client, _files = populated_cloud
        key = cloud.list(naming.INDEX_PREFIX)[0]
        cloud._objects[key] = cloud._objects[key][:-5]
        report = scrub_cloud(cloud)
        assert any("truncated index" in p for p in report.problems)

    def test_fast_mode_skips_rehash(self, populated_cloud):
        cloud, _client, _files = populated_cloud
        report = scrub_cloud(cloud, verify_extents=False)
        assert report.clean
        assert report.extents_verified == 0

    def test_detects_missing_object(self, rng):
        from repro.baselines import avamar_config
        files = {"x.doc": rng.integers(0, 256, 30_000,
                                       dtype=np.uint8).tobytes()}
        cloud = InMemoryBackend()
        BackupClient(cloud, avamar_config()).backup(MemorySource(files))
        victim = cloud.list(naming.CHUNK_PREFIX)[0]
        cloud._objects.pop(victim)
        report = scrub_cloud(cloud)
        assert any("missing object" in p for p in report.problems)


class TestResumeFromCloud:
    def test_stateless_dedup_continuity(self, populated_cloud):
        cloud, old_client, files = populated_cloud
        fresh = BackupClient(cloud, old_client.config)
        recovered = fresh.resume_from_cloud()
        assert recovered == len(old_client.index)
        assert fresh._next_session == 1
        stats = fresh.backup(MemorySource(files))
        assert stats.session_id == 1
        assert stats.chunks_unique == 0  # everything dedups

    def test_resume_empty_store(self):
        client = BackupClient(InMemoryBackend(), aa_dedupe_config())
        assert client.resume_from_cloud() == 0
        assert client._next_session == 0

    def test_incremental_resume_uses_latest_manifest(self, rng):
        from repro.baselines import jungle_disk_config
        files = {"a.txt": b"hello world content"}
        mt = {"a.txt": 100}
        cloud = InMemoryBackend()
        BackupClient(cloud, jungle_disk_config()).backup(
            MemorySource(files, mt))
        fresh = BackupClient(cloud, jungle_disk_config())
        fresh.resume_from_cloud()
        stats = fresh.backup(MemorySource(files, mt))
        assert stats.files_unchanged == 1
        assert stats.bytes_unique == 0
