"""Tests for application classification and the Fig. 6 policy table."""

import pytest

from repro.classify import (
    AA_POLICY_TABLE,
    AppType,
    Category,
    UNKNOWN,
    classify_name,
    classify_path,
    classify_file,
    known_app_types,
    policy_for_category,
    policy_for_path,
    register_app_type,
    sniff_bytes,
)
from repro.chunking import (FastCDC, GearCDC, RabinCDC, SeqCDC,
                            StaticChunker, WholeFileChunker)
from repro.classify.policy import cdc_policy_variant, make_chunker
from repro.errors import ConfigError


class TestClassifyByExtension:
    @pytest.mark.parametrize("name,label,category", [
        ("song.mp3", "mp3", Category.COMPRESSED),
        ("movie.AVI", "avi", Category.COMPRESSED),
        ("archive.rar", "rar", Category.COMPRESSED),
        ("photo.jpeg", "jpg", Category.COMPRESSED),
        ("disk.iso", "iso", Category.COMPRESSED),
        ("image.dmg", "dmg", Category.COMPRESSED),
        ("paper.pdf", "pdf", Category.STATIC),
        ("setup.exe", "exe", Category.STATIC),
        ("vm.vmdk", "vmdk", Category.STATIC),
        ("letter.doc", "doc", Category.DYNAMIC),
        ("notes.txt", "txt", Category.DYNAMIC),
        ("slides.ppt", "ppt", Category.DYNAMIC),
    ])
    def test_paper_twelve_apps(self, name, label, category):
        app = classify_name(name)
        assert app.label == label
        assert app.category == category

    def test_unknown_extension(self):
        assert classify_name("file.xyzzy") is UNKNOWN

    def test_no_extension(self):
        assert classify_name("Makefile") is UNKNOWN

    def test_path_variant(self):
        assert classify_path("/home/u/docs/a.b.PDF").label == "pdf"

    def test_unknown_is_dynamic(self):
        # Conservative fallback: strongest hash, finest chunking.
        assert UNKNOWN.category == Category.DYNAMIC

    def test_registry_collision_detected(self):
        with pytest.raises(ValueError):
            register_app_type(AppType("dupe", Category.COMPRESSED, ("mp3",)))

    def test_known_app_types_sorted(self):
        labels = [a.label for a in known_app_types()]
        assert labels == sorted(labels)
        assert "vmdk" in labels


class TestMagicSniffing:
    @pytest.mark.parametrize("head,label", [
        (b"\xFF\xD8\xFF\xE0" + b"\0" * 60, "jpg"),
        (b"%PDF-1.4" + b"\0" * 56, "pdf"),
        (b"PK\x03\x04" + b"\0" * 60, "zip"),
        (b"Rar!\x1a\x07\x00" + b"\0" * 57, "rar"),
        (b"MZ\x90\x00" + b"\0" * 60, "exe"),
        (b"ID3\x03" + b"\0" * 60, "mp3"),
        (b"RIFF\x24\x00\x00\x00AVI " + b"\0" * 52, "avi"),
        (b"RIFF\x24\x00\x00\x00WAVE" + b"\0" * 52, "audio"),
        (b"KDMV" + b"\0" * 60, "vmdk"),
        (b"\xD0\xCF\x11\xE0\xA1\xB1\x1A\xE1" + b"\0" * 56, "doc"),
    ])
    def test_signatures(self, head, label):
        assert sniff_bytes(head).label == label

    def test_unknown_content(self):
        assert sniff_bytes(b"\x00\x01\x02\x03" * 16) is UNKNOWN

    def test_iso_deep_offset(self):
        assert sniff_bytes(b"\0" * 64, tail_probe=b"CD001").label == "iso"

    def test_classify_file_extension_wins(self, tmp_path):
        f = tmp_path / "actually.pdf"
        f.write_bytes(b"MZ not really a pdf")
        assert classify_file(f).label == "pdf"

    def test_classify_file_sniffs_extensionless(self, tmp_path):
        f = tmp_path / "mystery"
        f.write_bytes(b"%PDF-1.7 content here")
        assert classify_file(f).label == "pdf"

    def test_classify_file_missing(self, tmp_path):
        assert classify_file(tmp_path / "nope") is UNKNOWN


class TestPolicyTable:
    def test_compressed_policy(self):
        p = AA_POLICY_TABLE[Category.COMPRESSED]
        assert p.chunker == "wfc" and p.hash_name == "rabin12"
        assert isinstance(p.make_chunker(), WholeFileChunker)

    def test_static_policy(self):
        p = AA_POLICY_TABLE[Category.STATIC]
        assert p.chunker == "sc" and p.hash_name == "md5"
        chunker = p.make_chunker()
        assert isinstance(chunker, StaticChunker)
        assert chunker.chunk_size == 8192

    def test_dynamic_policy(self):
        p = AA_POLICY_TABLE[Category.DYNAMIC]
        assert p.chunker == "cdc" and p.hash_name == "sha1"
        chunker = p.make_chunker()
        assert isinstance(chunker, RabinCDC)
        assert (chunker.min_size, chunker.max_size) == (2048, 16384)
        assert chunker.window == 48

    def test_policy_for_path(self):
        app, policy = policy_for_path("backup/report.doc")
        assert app.label == "doc"
        assert policy.chunker == "cdc"

    def test_policy_for_category_custom_table(self):
        table = {Category.COMPRESSED: AA_POLICY_TABLE[Category.DYNAMIC]}
        assert policy_for_category(Category.COMPRESSED, table).chunker == "cdc"
        with pytest.raises(ConfigError):
            policy_for_category(Category.STATIC, table)

    def test_fingerprinter_resolution(self):
        for policy in AA_POLICY_TABLE.values():
            fp = policy.fingerprinter()
            assert fp.digest_size in (12, 16, 20)

    def test_fast_chunker_policies_resolve(self):
        for name, cls in [("gear", GearCDC), ("fastcdc", FastCDC),
                          ("seqcdc", SeqCDC)]:
            chunker = make_chunker(name, {"avg_size": 4096,
                                          "min_size": 1024,
                                          "max_size": 8192})
            assert isinstance(chunker, cls)
            assert (chunker.min_size, chunker.max_size) == (1024, 8192)

    def test_make_chunker_unknown_name_lists_valid_names(self):
        with pytest.raises(ConfigError) as excinfo:
            make_chunker("bogus", {})
        message = str(excinfo.value)
        assert "'bogus'" in message
        for name in ("wfc", "sc", "cdc", "gear", "fastcdc", "seqcdc"):
            assert name in message


class TestCDCPolicyVariant:
    def test_retarget_keeps_geometry_drops_engine_params(self):
        base = AA_POLICY_TABLE[Category.DYNAMIC]
        variant = cdc_policy_variant(base, "fastcdc")
        assert variant.chunker == "fastcdc"
        assert variant.hash_name == base.hash_name
        assert "window" not in variant.chunker_params
        chunker = variant.make_chunker()
        assert isinstance(chunker, FastCDC)
        assert (chunker.min_size, chunker.max_size) == (2048, 16384)

    def test_same_engine_is_identity(self):
        base = AA_POLICY_TABLE[Category.DYNAMIC]
        assert cdc_policy_variant(base, "cdc") is base

    def test_non_cdc_policy_rejected(self):
        with pytest.raises(ConfigError):
            cdc_policy_variant(AA_POLICY_TABLE[Category.COMPRESSED], "gear")

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            cdc_policy_variant(AA_POLICY_TABLE[Category.DYNAMIC], "bogus")
