"""Fleet subsystem tests: global directory, fleet index, service runs.

The determinism suite is the load-bearing part: a fleet run's results
(session stats, shard accounting, WAN time, bills) must be identical
for a fixed seed no matter how many worker threads execute a wave —
``max_workers`` is a performance knob, never a results knob.
"""

import hashlib
from dataclasses import asdict

import pytest

from repro.core.restore import RestoreClient
from repro.errors import SimulationError, WorkloadError
from repro.fleet import (
    FleetIndex,
    FleetService,
    GlobalDedupDirectory,
    generated_fleet_sources,
    synthetic_fleet_sources,
)
from repro.fleet.service import CONTAINER_ID_STRIDE
from repro.index import IndexEntry
from repro.index.cache import LRUCache


def fp(i: int) -> bytes:
    return hashlib.sha1(str(i).encode()).digest()


def entry(i: int, length: int = 64) -> IndexEntry:
    return IndexEntry(fingerprint=fp(i), container_id=i, offset=0,
                      length=length, refcount=1)


class TestGlobalDedupDirectory:
    def test_sharding_by_app_and_ring(self):
        d = GlobalDedupDirectory(shards_per_app=4)
        a = d.shard_for("doc", fp(1))
        assert a is d.shard_for("doc", fp(1))
        assert a is not d.shard_for("mp3", fp(1))  # apps never share
        assert 0 <= a.bucket < 4

    def test_publish_invisible_until_commit(self):
        d = GlobalDedupDirectory()
        d.publish_batch("doc", [entry(1)], rank=0)
        assert d.lookup("doc", fp(1)) is None
        assert d.commit_epoch() == 1
        assert d.lookup("doc", fp(1)) == entry(1)
        assert d.epoch == 1

    def test_lookup_batch_alignment_and_batching(self):
        d = GlobalDedupDirectory(shards_per_app=2)
        d.publish_batch("doc", [entry(i) for i in range(6)], rank=0)
        d.commit_epoch()
        fps = [fp(5), fp(999), fp(0), fp(3)]
        out = d.lookup_batch("doc", fps)
        assert out == [entry(5), None, entry(0), entry(3)]
        # The whole batch cost at most one probe round per shard.
        assert sum(s.batches for s in d.shards()) <= 2
        assert sum(s.probes for s in d.shards()) == 4
        assert sum(s.hits for s in d.shards()) == 3

    def test_lowest_rank_wins_conflicts(self):
        d = GlobalDedupDirectory()
        late = IndexEntry(fingerprint=fp(1), container_id=777, offset=0,
                          length=64, refcount=1)
        d.publish_batch("doc", [late], rank=5)
        d.publish_batch("doc", [entry(1)], rank=2)  # lower rank, later
        d.commit_epoch()
        assert d.lookup("doc", fp(1)).container_id == 1

    def test_committed_fingerprint_not_replaced(self):
        d = GlobalDedupDirectory()
        d.publish_batch("doc", [entry(1)], rank=3)
        assert d.commit_epoch() == 1
        other = IndexEntry(fingerprint=fp(1), container_id=42, offset=0,
                           length=64, refcount=1)
        d.publish_batch("doc", [other], rank=0)
        assert d.commit_epoch() == 0  # location already settled
        assert d.lookup("doc", fp(1)).container_id == 1

    def test_commit_does_not_pollute_probe_stats(self):
        d = GlobalDedupDirectory(shards_per_app=1)
        d.publish_batch("doc", [entry(i) for i in range(8)], rank=0)
        d.commit_epoch()
        shard = d.shards()[0]
        assert shard.probes == 0 and shard.batches == 0
        assert shard.stats.lookups == 0  # commit used no index lookups
        assert len(shard) == 8

    def test_stats_rows_and_len(self):
        d = GlobalDedupDirectory(shards_per_app=1)
        d.publish_batch("doc", [entry(1), entry(1)], rank=0)
        d.commit_epoch()
        d.lookup("doc", fp(1))
        d.lookup("doc", fp(2))
        (row,) = d.stats_rows()
        assert row["shard"] == "doc/0"
        assert row["entries"] == 1 and len(d) == 1
        assert row["publishes"] == 2 and row["accepted"] == 1
        assert row["probes"] == 2 and row["hits"] == 1

    def test_cache_capacity_fronts_shards_with_lru(self):
        d = GlobalDedupDirectory(shards_per_app=1, cache_capacity=16)
        d.publish_batch("doc", [entry(1)], rank=0)
        d.commit_epoch()
        assert isinstance(d.shards()[0].index, LRUCache)
        assert d.lookup("doc", fp(1)) == entry(1)

    def test_locality_capacity_fronts_shards(self):
        from repro.index.locality import LocalityCache
        d = GlobalDedupDirectory(shards_per_app=1, locality_capacity=16)
        d.publish_batch("doc", [entry(1)], rank=0)
        d.commit_epoch()
        assert isinstance(d.shards()[0].index, LocalityCache)
        assert d.lookup("doc", fp(1)) == entry(1)
        (row,) = d.stats_rows()
        assert row["locality"]  # scores visible once a stream probed

    def test_cache_fronts_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            GlobalDedupDirectory(cache_capacity=4, locality_capacity=4)

    # -- regression: single-byte bucketing capped shards at 256 --------
    @pytest.mark.parametrize("shards", [6, 300])
    def test_ring_occupancy_near_uniform(self, shards):
        d = GlobalDedupDirectory(shards_per_app=shards)
        n = 30_000
        d.publish_batch("doc", [entry(i) for i in range(n)], rank=0)
        d.commit_epoch()
        counts = {b: 0 for b in range(shards)}
        for shard in d.shards():
            counts[shard.bucket] = len(shard)
        mean = n / shards
        # Every configured bucket is reachable (the old fingerprint[0]
        # router left shards 256.. permanently empty) and load is
        # near-uniform (non-divisors of 256 used to skew it).
        assert min(counts.values()) > 0.4 * mean
        assert max(counts.values()) < 2.0 * mean

    # -- regression: read path must never allocate shards --------------
    def test_lookup_never_allocates_shards(self):
        d = GlobalDedupDirectory(shards_per_app=4)
        out = d.lookup_batch("doc", [fp(i) for i in range(64)])
        assert out == [None] * 64
        assert d.shards() == []          # no shard map mutation
        assert d.absent_probes == 64
        # A published app allocates only the arcs publishes touched;
        # probing a *different* app afterwards still allocates nothing.
        d.publish_batch("doc", [entry(1)], rank=0)
        d.commit_epoch()
        before = [s.key for s in d.shards()]
        assert d.lookup("mp3", fp(1)) is None
        assert d.lookup_batch("mp3", [fp(2), fp(3)]) == [None, None]
        assert [s.key for s in d.shards()] == before

    # -- regression: stats must merge the whole wrapper chain ----------
    def test_stats_walk_three_deep_chain(self, tmp_path):
        from repro.index.disk import DiskIndex
        from repro.index.locality import LocalityCache

        def factory(app, bucket):
            # filter -> locality cache -> LRU -> disk: three wrapper
            # levels over the disk index.
            disk = DiskIndex(tmp_path / f"{app}-{bucket}",
                             memtable_limit=2, bloom_fp_rate=None)
            return LocalityCache(LRUCache(disk, capacity=1), capacity=1)

        d = GlobalDedupDirectory(shards_per_app=1, index_factory=factory)
        d.publish_batch("doc", [entry(i) for i in range(8)], rank=0)
        d.commit_epoch()
        for i in range(8):
            assert d.lookup("doc", fp(i)) == entry(i)
        shard = d.shards()[0]
        stats = shard.stats
        deep = shard.index.backing.backing.stats  # the DiskIndex
        assert deep.disk_probes > 0
        # Disk IO surfaces through both cache levels ...
        assert stats.disk_probes == deep.disk_probes
        assert stats.disk_bytes == deep.disk_bytes
        # ... and memory hits accumulate across every level.
        chain_memory = (shard.index.stats.memory_hits
                        + shard.index.backing.stats.memory_hits
                        + deep.memory_hits)
        assert stats.memory_hits == chain_memory
        assert stats.lookups == shard.index.stats.lookups
        (row,) = d.stats_rows()
        assert row["disk_probes"] == deep.disk_probes

    # -- bloom filter front --------------------------------------------
    def test_filter_front_absorbs_cold_misses(self):
        d = GlobalDedupDirectory(shards_per_app=1, filter_capacity=64)
        d.publish_batch("doc", [entry(i) for i in range(8)], rank=0)
        d.commit_epoch()
        shard = d.shards()[0]
        baseline_batches = shard.batches
        cold = [fp(i) for i in range(1000, 1032)]
        out, absorbed = d.probe_batch("doc", cold)
        assert out == [None] * 32
        # Near-all cold probes are answered by the filter: no index
        # lookup, and a fully-absorbed group costs no batch seek.
        assert sum(absorbed) >= 30
        assert shard.filter_rejects >= 30
        assert shard.stats.lookups <= 2  # only bloom false positives
        assert shard.batches <= baseline_batches + 1
        # Committed fingerprints always pass the filter (no false
        # negatives): every hit still lands.
        hits, flags = d.probe_batch("doc", [fp(i) for i in range(8)])
        assert hits == [entry(i) for i in range(8)]
        assert not any(flags)

    def test_filter_grows_past_capacity(self):
        d = GlobalDedupDirectory(shards_per_app=1, filter_capacity=16)
        d.publish_batch("doc", [entry(i) for i in range(200)], rank=0)
        d.commit_epoch()
        shard = d.shards()[0]
        assert shard.bloom.capacity >= 200
        assert all(d.lookup("doc", fp(i)) == entry(i) for i in range(200))

    # -- consistent-hash rebalancing -----------------------------------
    def test_split_migrates_and_preserves_lookups(self):
        d = GlobalDedupDirectory(shards_per_app=2, filter_capacity=32,
                                 shard_split_entries=40)
        d.publish_batch("doc", [entry(i) for i in range(200)], rank=0)
        d.commit_epoch()
        # Several epochs of splits under sustained overload.
        for _ in range(4):
            d.commit_epoch()
        assert d.rebalances > 0
        assert d.migrated_entries > 0
        assert len({s.bucket for s in d.shards()}) > 2
        assert len(d) == 200  # nothing lost in migration
        # Every entry still routes to a shard that holds it.
        assert all(d.lookup("doc", fp(i)) == entry(i) for i in range(200))
        # Shards agree with the ring: each holds only its own arcs.
        ring = d._ring("doc")
        for shard in d.shards():
            for e in shard.committed_entries():
                assert ring.node_for(e.fingerprint) == shard.bucket


class TestFleetIndex:
    def test_local_before_remote(self):
        d = GlobalDedupDirectory()
        ix = FleetIndex(d, "doc", rank=0)
        ix.insert(entry(1))
        assert ix.lookup(fp(1)) == entry(1)
        assert ix.remote_probes == 0
        assert ix.stats.memory_hits == 1

    def test_remote_hit_adopts_entry(self):
        d = GlobalDedupDirectory()
        d.publish_batch("doc", [entry(7, length=100)], rank=0)
        d.commit_epoch()
        ix = FleetIndex(d, "doc", rank=1)
        assert ix.lookup(fp(7)) == entry(7, length=100)
        assert ix.remote_probes == 1 and ix.remote_hits == 1
        assert ix.adopted_bytes == 100
        # Adopted: the repeat is a pure local memory hit.
        assert ix.lookup(fp(7)) == entry(7, length=100)
        assert ix.remote_probes == 1
        assert ix.stats.memory_hits == 1

    def test_miss_memo_per_epoch(self):
        d = GlobalDedupDirectory(shards_per_app=1)
        # Allocate the shard first: the memo covers misses that reached
        # a backing index (absent-shard misses are absorbed instead).
        d.publish_batch("doc", [entry(99)], rank=0)
        d.commit_epoch()
        ix = FleetIndex(d, "doc", rank=1)
        for _ in range(5):
            assert ix.lookup(fp(3)) is None
        assert ix.remote_probes == 1  # memoised within the epoch
        d.publish_batch("doc", [entry(3)], rank=0)
        d.commit_epoch()
        assert ix.lookup(fp(3)) == entry(3)  # memo invalidated by commit
        assert ix.remote_probes == 2

    def test_absorbed_misses_skip_the_memo(self):
        # Misses the shard filter (or an absent shard) answers are not
        # memoised: re-probing is a RAM bit test, and the memo set must
        # not grow with every cold fingerprint at fleet scale.
        d = GlobalDedupDirectory(shards_per_app=1, filter_capacity=32)
        d.publish_batch("doc", [entry(1)], rank=0)
        d.commit_epoch()
        ix = FleetIndex(d, "doc", rank=1)
        for _ in range(4):
            assert ix.lookup(fp(777)) is None
        assert ix.filter_absorbed == 4
        assert len(ix._misses) == 0
        # Absent-shard probes behave the same way.
        cold = FleetIndex(d, "mp3", rank=1)
        assert cold.lookup(fp(5)) is None
        assert cold.filter_absorbed == 1
        assert len(cold._misses) == 0

    def test_outbox_batches_publishes(self):
        d = GlobalDedupDirectory(shards_per_app=1)
        ix = FleetIndex(d, "doc", rank=0, publish_batch=4)
        for i in range(3):
            ix.insert(entry(i))
        d.commit_epoch()
        assert d.shards() == []   # below threshold: nothing published
        ix.insert(entry(3))       # hits the batch threshold
        # The shard materialises at the barrier (live topology is
        # frozen between commits) and the offer count rides along.
        assert d.shards() == []
        d.commit_epoch()
        assert d.shards()[0].publishes == 4
        ix.insert(entry(4))
        ix.flush_publishes()      # shard exists now: direct offer
        assert d.shards()[0].publishes == 5

    def test_adopted_and_reinserted_entries_not_republished(self):
        d = GlobalDedupDirectory(shards_per_app=1)
        d.publish_batch("doc", [entry(1)], rank=0)
        d.commit_epoch()
        ix = FleetIndex(d, "doc", rank=1, publish_batch=1)
        adopted = ix.lookup(fp(1))
        ix.insert(adopted.bumped())   # refcount bookkeeping
        ix.insert(adopted.bumped(2))
        assert d.shards()[0].publishes == 1  # only the original publish

    def test_stat_invariants(self):
        d = GlobalDedupDirectory()
        ix = FleetIndex(d, "doc", rank=0)
        for i in range(5):
            ix.insert(entry(i))
        for i in range(10):
            ix.lookup(fp(i))
        s = ix.stats
        assert s.memory_hits <= s.hits <= s.lookups
        assert (s.lookups, s.hits) == (10, 5)


def _session_key(report):
    """Comparable projection of a fleet run (wall-time fields are host
    measurements, not simulation outputs, so they are excluded)."""
    wall = {"dedup_wall_seconds", "upload_wall_seconds"}
    return [
        ([{k: v for k, v in asdict(s).items() if k not in wall}
          for s in c.sessions],
         c.transfer_seconds, c.bill, c.cross_bytes)
        for c in report.clients
    ]


def _run_fleet(clients=4, sessions=2, max_workers=4, waves=2, **workload):
    workload.setdefault("file_kib", 12)
    sources = synthetic_fleet_sources(clients, sessions, **workload)
    service = FleetService(clients=clients, waves=waves)
    try:
        report = service.run(sources, max_workers=max_workers)
    finally:
        service.close()
    return service, report, sources


class TestFleetService:
    def test_cross_client_dedup_on_shared_corpus(self):
        _svc, report, _ = _run_fleet()
        assert report.cross_bytes > 0
        assert 0 < report.cross_client_fraction < 1
        # Wave-1 clients deduplicate against wave-0 uploads.
        assert report.clients[1].cross_bytes > 0
        assert report.clients[3].cross_bytes > 0
        # Fleet-wide invariants.
        assert report.bytes_unique < report.bytes_scanned
        assert report.dedup_ratio > 1
        assert report.makespan_seconds > 0
        assert report.aggregate_goodput > 0

    def test_no_shared_data_no_cross_dedup(self):
        _svc, report, _ = _run_fleet(clients=3, sessions=1,
                                     shared_files=0)
        assert report.cross_bytes == 0
        assert report.cross_client_fraction == 0.0

    def test_determinism_across_max_workers(self):
        # ISSUE acceptance: same seeds => identical aggregate session
        # stats regardless of the thread pool size.
        keys, shard_rows = [], []
        for workers in (1, 4, 8):
            _svc, report, _ = _run_fleet(clients=5, sessions=3,
                                         max_workers=workers)
            keys.append(_session_key(report))
            shard_rows.append(report.shard_rows)
        assert keys[0] == keys[1] == keys[2]
        assert shard_rows[0] == shard_rows[1] == shard_rows[2]

    def test_restore_through_adopted_chunks(self):
        service, report, sources = _run_fleet()
        rank = 1  # wave-1 client: provably adopted remote chunks
        assert report.clients[rank].cross_bytes > 0
        restorer = RestoreClient(service.clients[rank].cloud.backend)
        for session in range(2):
            files, _ = restorer.restore_to_memory(session)
            expected = {sf.path: sf.read()
                        for sf in sources[rank][session]}
            assert files == expected

    def test_container_id_ranges_disjoint(self):
        service, _report, _ = _run_fleet(clients=3)
        from repro.core import naming
        ids = [int(key[len(naming.CONTAINER_PREFIX):])
               for key in service.backend.list(naming.CONTAINER_PREFIX)]
        assert ids, "fleet stored no containers"
        owners = {i // CONTAINER_ID_STRIDE for i in ids}
        assert owners <= {0, 1, 2}
        assert len(owners) == 3  # every client allocated from its range

    def test_private_state_is_namespaced(self):
        service, _report, _ = _run_fleet(clients=2, sessions=1)
        keys = list(service.backend.list(""))
        manifests = [k for k in keys if "manifests/" in k]
        assert manifests
        assert all(k.startswith("clients/") for k in manifests)
        assert {k.split("/")[1] for k in manifests} == {"c000", "c001"}

    def test_mismatched_sources_rejected(self):
        service = FleetService(clients=2)
        with pytest.raises(SimulationError):
            service.run([[]])  # one client's sources for a two-client fleet
        with pytest.raises(SimulationError):
            service.run([[None], [None, None]])  # ragged session counts
        service.close()

    def test_directory_accounting_in_report(self):
        _svc, report, _ = _run_fleet()
        assert report.directory_entries > 0
        assert report.committed_entries == report.directory_entries
        assert report.epochs == 2 * 2  # rounds x waves
        assert sum(r["accepted"] for r in report.shard_rows) == \
            report.directory_entries
        assert report.server_seek_seconds() == 0.0  # memory shards
        rendered = report.render()
        assert "fleet summary" in rendered and "directory shards" in rendered


class TestFleetWorkloads:
    def test_synthetic_shared_part_identical_across_clients(self):
        sources = synthetic_fleet_sources(3, 2, file_kib=12)
        for session in range(2):
            shared = [
                {sf.path: sf.read() for sf in sources[rank][session]
                 if sf.path.startswith("shared/")}
                for rank in range(3)
            ]
            assert shared[0] == shared[1] == shared[2]
            assert shared[0]  # non-empty

    def test_synthetic_private_parts_differ(self):
        sources = synthetic_fleet_sources(2, 1, file_kib=12)
        private = [
            {sf.path: sf.read() for sf in sources[rank][0]
             if sf.path.startswith("private/")}
            for rank in range(2)
        ]
        assert set(private[0]) == set(private[1])  # same layout
        assert private[0] != private[1]            # different bytes

    def test_synthetic_deterministic(self):
        def digest():
            sources = synthetic_fleet_sources(2, 2, file_kib=12)
            h = hashlib.sha1()
            for per_client in sources:
                for source in per_client:
                    for sf in source:
                        h.update(sf.path.encode())
                        h.update(sf.read())
            return h.hexdigest()
        assert digest() == digest()

    def test_synthetic_files_clear_tiny_threshold(self):
        sources = synthetic_fleet_sources(1, 1, file_kib=12)
        assert all(sf.size >= 10 * 1024 for sf in sources[0][0])

    def test_generated_rejects_tiny_scale(self):
        with pytest.raises(WorkloadError):
            generated_fleet_sources(2, 2, bytes_per_client=1 << 20)
