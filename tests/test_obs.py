"""Observability layer: tracer, metrics, profile aggregation, export.

All timed assertions run on a :class:`VirtualClock`, so nesting and
durations are exact — no wall-clock tolerance anywhere.
"""

import json
import threading

import numpy as np
import pytest

from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, RestoreClient, aa_dedupe_config
from repro.obs import (
    CHUNK_SIZE_BUCKETS,
    NOOP_TRACER,
    Histogram,
    MetricsRegistry,
    NoopTracer,
    Tracer,
    load_spans,
    render_profile,
    stage_breakdown,
)
from repro.obs.profile import stage_group
from repro.simulate.clock import VirtualClock
from repro.util.units import KIB


@pytest.fixture()
def vclock():
    return VirtualClock()


@pytest.fixture()
def tracer(vclock):
    return Tracer(clock=vclock, metrics=MetricsRegistry())


# ---------------------------------------------------------------------------
class TestSpanNesting:
    def test_nested_spans_record_parent_and_exact_durations(self, tracer,
                                                            vclock):
        with tracer.span("outer", kind="root"):
            vclock.advance(1.0)
            with tracer.span("inner"):
                vclock.advance(0.25)
            vclock.advance(0.5)
        by_name = {s.name: s for s in tracer.spans()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(1.75)
        assert outer.attrs == {"kind": "root"}

    def test_spans_ordered_by_start_then_id(self, tracer, vclock):
        with tracer.span("a"):
            pass  # zero duration, same start as b
        with tracer.span("b"):
            vclock.advance(1.0)
        with tracer.span("c"):
            pass
        names = [s.name for s in tracer.spans()]
        assert names == ["a", "b", "c"]

    def test_sequential_siblings_share_parent(self, tracer, vclock):
        with tracer.span("root"):
            for name in ("s1", "s2", "s3"):
                with tracer.span(name):
                    vclock.advance(0.1)
        by_name = {s.name: s for s in tracer.spans()}
        root_id = by_name["root"].span_id
        assert all(by_name[n].parent_id == root_id
                   for n in ("s1", "s2", "s3"))

    def test_threads_nest_independently(self, tracer, vclock):
        done = threading.Event()

        def worker():
            with tracer.span("on-worker"):
                pass
            done.set()

        with tracer.span("on-main"):
            thread = threading.Thread(target=worker, name="w0")
            thread.start()
            thread.join()
        assert done.wait(5)
        by_name = {s.name: s for s in tracer.spans()}
        # the worker's span is a root on its own thread, not a child of
        # the span that happened to be open on the main thread
        assert by_name["on-worker"].parent_id is None
        assert by_name["on-worker"].thread == "w0"

    def test_set_attaches_attributes(self, tracer):
        with tracer.span("op") as sp:
            sp.set("hit", True)
        assert tracer.spans()[0].attrs["hit"] is True

    def test_clear_drops_spans(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []


# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("ops").value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_high_water_mark(self):
        gauge = MetricsRegistry().gauge("depth")
        for level in (2, 7, 3):
            gauge.set(level)
        assert gauge.value == 3
        assert gauge.max_value == 7

    def test_histogram_bucket_edges_are_inclusive_upper(self):
        h = Histogram("sizes", buckets=(10, 100, 1000))
        # a value equal to a bound lands in that bound's bin …
        h.observe(10)
        h.observe(100)
        h.observe(1000)
        # … one past it lands in the next bin; past the last bound is
        # the overflow bin.
        h.observe(10.0001)
        h.observe(1000.0001)
        assert h.counts == [1, 2, 1, 1]
        assert h.bucket_label(0) == "(0, 10]"
        assert h.bucket_label(1) == "(10, 100]"
        assert h.bucket_label(3) == ">1000"
        assert h.count == 5
        assert h.min == 10
        assert h.max == pytest.approx(1000.0001)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_registry_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        h1 = registry.histogram("x", buckets=(1, 2))
        h2 = registry.histogram("x", buckets=(9, 99))  # ignored
        assert h1 is h2
        assert h1.buckets == (1.0, 2.0)

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1, 10)).observe(5)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == {"value": 2, "max": 2}
        assert snap["histograms"]["h"]["buckets"] == {"(1, 10]": 1}
        rendered = registry.render()
        assert "Counters" in rendered and "Histogram h" in rendered
        assert MetricsRegistry().render() == ""


# ---------------------------------------------------------------------------
class TestNoopTracer:
    def test_disabled_flag_and_inert_span(self):
        assert NOOP_TRACER.enabled is False
        assert NoopTracer.metrics is None
        handle = NOOP_TRACER.span("anything", k=1)
        assert handle is NOOP_TRACER.span("other")  # shared singleton
        with handle as sp:
            sp.set("k", 2)  # swallowed
        assert sp.duration == 0.0
        assert NOOP_TRACER.spans() == []

    def test_default_tracer_everywhere_is_noop(self):
        client = BackupClient(InMemoryBackend(), aa_dedupe_config())
        assert client.tracer is NOOP_TRACER
        assert client.index.tracer is NOOP_TRACER
        assert client._containers.tracer is NOOP_TRACER

    def test_same_session_stats_tracing_on_vs_off(self, rng):
        """The tracer observes; it must never change what the backup
        does — identical SessionStats counters and identical stored
        objects either way."""
        files = {f"docs/f{i}.doc": rng.integers(
            0, 256, 30_000, dtype=np.uint8).tobytes() for i in range(5)}
        files["music/a.mp3"] = rng.integers(
            0, 256, 25_000, dtype=np.uint8).tobytes()

        def run(tracer):
            cloud = InMemoryBackend()
            client = BackupClient(
                cloud, aa_dedupe_config(container_size=32 * KIB),
                tracer=tracer)
            stats = client.backup(MemorySource(files))
            client.close()
            objects = {k: cloud.get(k) for k in cloud.list()
                       if not k.startswith("manifests/")}
            return stats, objects

        stats_off, objects_off = run(None)
        stats_on, objects_on = run(Tracer(clock=VirtualClock()))
        for field in ("files_total", "files_tiny", "bytes_scanned",
                      "bytes_unique", "chunks_unique"):
            assert (getattr(stats_on, field)
                    == getattr(stats_off, field)), field
        assert stats_on.ops.__dict__ == stats_off.ops.__dict__
        # every non-manifest object is byte-identical
        assert objects_on == objects_off


# ---------------------------------------------------------------------------
class TestExportRoundTrip:
    def _sample_spans(self, tracer, vclock):
        with tracer.span("session", scheme="AA-Dedupe"):
            vclock.advance(0.5)
            with tracer.span("chunk", app="doc", bytes=4096):
                vclock.advance(0.25)

    def test_jsonl_round_trips_spans_exactly(self, tracer, vclock):
        self._sample_spans(tracer, vclock)
        text = tracer.export_jsonl()
        loaded = load_spans(text)
        assert loaded == tracer.spans()

    def test_events_are_chrome_trace_compatible(self, tracer, vclock):
        self._sample_spans(tracer, vclock)
        for line in tracer.export_jsonl().splitlines():
            event = json.loads(line)
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid",
                                  "args"}
        # ts/dur are microseconds
        event = json.loads(tracer.export_jsonl().splitlines()[-1])
        assert event["name"] == "chunk"
        assert event["dur"] == pytest.approx(250_000)

    def test_write_jsonl_and_load_from_file(self, tracer, vclock,
                                            tmp_path):
        self._sample_spans(tracer, vclock)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        with open(path, encoding="utf-8") as fh:
            loaded = load_spans(fh)
        assert loaded == tracer.spans()

    def test_load_skips_foreign_phases_and_array_syntax(self):
        lines = [
            "[",
            '{"name": "meta", "ph": "M", "ts": 0, "args": {}},',
            '{"name": "op", "ph": "X", "ts": 1000000, "dur": 500000, '
            '"pid": 0, "tid": 0, "args": {"sid": 1}},',
            "]",
        ]
        spans = load_spans(lines)
        assert [s.name for s in spans] == ["op"]
        assert spans[0].start == pytest.approx(1.0)
        assert spans[0].duration == pytest.approx(0.5)


# ---------------------------------------------------------------------------
class TestProfile:
    def test_stage_group_mapping(self):
        assert stage_group("chunk.cut") == "chunk"
        assert stage_group("hash") == "hash"
        assert stage_group("index.lookup") == "index"
        assert stage_group("upload") == "transfer"
        assert stage_group("cloud.put.attempt") == "transfer"
        assert stage_group("retry.sleep") == "transfer"
        assert stage_group("container.seal") == "container"
        assert stage_group("manifest") == "other"

    def test_self_times_sum_to_window(self, tracer, vclock):
        with tracer.span("session"):
            with tracer.span("chunk", app="doc"):
                vclock.advance(1.0)
            with tracer.span("upload", app="doc"):
                vclock.advance(2.0)
            vclock.advance(0.5)  # engine glue: session self time
        profile = stage_breakdown(tracer.spans())
        assert profile.window_seconds == pytest.approx(3.5)
        assert profile.accounted_seconds == pytest.approx(3.5)
        assert profile.stages["session"].self_seconds == pytest.approx(0.5)
        assert profile.outside_seconds == 0.0

    def test_spans_outside_root_tracked_separately(self, tracer, vclock):
        with tracer.span("cloud.list"):  # client setup, pre-session
            vclock.advance(0.25)
        with tracer.span("session"):
            vclock.advance(1.0)
        profile = stage_breakdown(tracer.spans())
        assert profile.window_seconds == pytest.approx(1.0)
        assert profile.accounted_seconds == pytest.approx(1.0)
        assert profile.outside_seconds == pytest.approx(0.25)

    def test_app_attribution_inherits_from_ancestors(self, tracer,
                                                     vclock):
        with tracer.span("session"):
            with tracer.span("upload", app="mp3"):
                with tracer.span("cloud.put"):  # no app attr of its own
                    vclock.advance(1.0)
        profile = stage_breakdown(tracer.spans())
        assert profile.apps["mp3"]["transfer"] == pytest.approx(1.0)

    def test_render_lists_per_app_shares(self, tracer, vclock):
        with tracer.span("session"):
            with tracer.span("chunk", app="doc"):
                vclock.advance(3.0)
            with tracer.span("hash", app="doc"):
                vclock.advance(1.0)
        text = render_profile(tracer.spans())
        assert "Stage breakdown" in text
        assert "Per-application stage shares" in text
        doc_row = next(line for line in text.splitlines()
                       if line.startswith("doc"))
        assert "75.0" in doc_row and "25.0" in doc_row

    def test_empty_trace_renders_placeholder(self):
        assert render_profile([]) == "trace contains no spans"
        assert stage_breakdown([]).window_seconds == 0.0


# ---------------------------------------------------------------------------
class TestEndToEndProfiling:
    def test_backup_profile_sums_to_window_and_is_lossless(self, rng):
        from repro.cloud import SimulatedCloud

        files = {
            "docs/a.doc": rng.integers(0, 256, 60_000,
                                       dtype=np.uint8).tobytes(),
            "music/b.mp3": rng.integers(0, 256, 50_000,
                                        dtype=np.uint8).tobytes(),
            "misc/tiny.txt": b"x" * 100,
        }
        clock = VirtualClock()
        tracer = Tracer(clock=clock, metrics=MetricsRegistry())
        cloud = SimulatedCloud(InMemoryBackend(), clock=clock,
                               tracer=tracer)
        client = BackupClient(
            cloud, aa_dedupe_config(container_size=64 * KIB),
            tracer=tracer)
        client.backup(MemorySource(files))
        client.close()

        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"session", "file", "chunk", "chunk.cut", "hash",
                "index.lookup", "index.insert", "container.seal",
                "upload", "cloud.put", "cloud.put.attempt",
                "manifest", "index.sync"} <= names

        profile = stage_breakdown(spans)
        # single-threaded: per-stage self times sum exactly to the
        # session's backup window
        assert profile.accounted_seconds == pytest.approx(
            profile.window_seconds, abs=1e-9)
        # JSONL export re-renders bit-identically
        assert (render_profile(load_spans(tracer.export_jsonl()))
                == render_profile(spans))
        # metrics saw every chunk
        chunk_hist = tracer.metrics.histogram("chunk_bytes",
                                              CHUNK_SIZE_BUCKETS)
        assert chunk_hist.count > 0
        assert tracer.metrics.counter("index_lookups_total").value > 0

    def test_restore_spans_cover_fetches(self, rng):
        files = {"docs/a.doc": rng.integers(
            0, 256, 40_000, dtype=np.uint8).tobytes()}
        cloud = InMemoryBackend()
        client = BackupClient(cloud,
                              aa_dedupe_config(container_size=32 * KIB))
        client.backup(MemorySource(files))
        vclock = VirtualClock()
        tracer = Tracer(clock=vclock)
        restored, _ = RestoreClient(cloud, tracer=tracer).restore_to_memory(0)
        assert restored == files
        names = [s.name for s in tracer.spans()]
        assert "restore" in names
        assert "restore.file" in names
        assert "restore.container_fetch" in names
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["restore.file"].parent_id == \
            by_name["restore"].span_id

    def test_retry_attempts_show_as_sibling_spans(self):
        from repro.cloud import (ChaosBackend, RetryPolicy,
                                 SimulatedCloud)

        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        cloud = SimulatedCloud(
            ChaosBackend(InMemoryBackend(), seed=1,
                         transient_error_rate=0.5),
            clock=clock, tracer=tracer,
            retry=RetryPolicy(max_attempts=10, seed=3))
        for i in range(10):
            cloud.put(f"k{i}", b"payload")
        spans = tracer.spans()
        puts = [s for s in spans if s.name == "cloud.put"]
        attempts = [s for s in spans if s.name == "cloud.put.attempt"]
        sleeps = [s for s in spans if s.name == "retry.sleep"]
        assert len(puts) == 10
        assert len(attempts) > 10  # faults forced extra attempts
        assert sleeps, "retries must surface retry.sleep spans"
        # per-call attempt spans are children of their logical put
        put_ids = {s.span_id for s in puts}
        assert all(a.parent_id in put_ids for a in attempts)
        assert sum(s.attrs["attempts"] for s in puts) == len(attempts)
        assert tracer.metrics.counter(
            "cloud_attempts_total").value == len(attempts)
