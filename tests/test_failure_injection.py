"""Failure-injection tests: the engine must fail loudly, never corrupt."""

import numpy as np
import pytest

from repro.cloud import InMemoryBackend
from repro.core import (
    BackupClient,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
)
from repro.errors import BackupError, CloudError, ObjectNotFound
from repro.util.units import KIB


class FlakyBackend(InMemoryBackend):
    """Backend that fails the Nth put (transient WAN error injection)."""

    def __init__(self, fail_on_put: int):
        super().__init__()
        self.fail_on_put = fail_on_put
        self._puts_seen = 0

    def _put(self, key: str, data: bytes) -> None:
        self._puts_seen += 1
        if self._puts_seen == self.fail_on_put:
            raise CloudError("injected transient failure")
        super()._put(key, data)


@pytest.fixture()
def files(rng):
    return {f"d/file{i}.doc": rng.integers(
        0, 256, 30_000, dtype=np.uint8).tobytes() for i in range(6)}


class TestUploadFailures:
    def test_synchronous_upload_failure_propagates(self, files):
        cloud = FlakyBackend(fail_on_put=2)
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB))
        with pytest.raises(CloudError):
            client.backup(MemorySource(files))

    def test_pipelined_upload_failure_propagates(self, files):
        cloud = FlakyBackend(fail_on_put=2)
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB, pipeline_uploads=True))
        with pytest.raises((BackupError, CloudError)):
            client.backup(MemorySource(files))

    def test_parallel_upload_failure_propagates(self, files):
        cloud = FlakyBackend(fail_on_put=2)
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB, parallel_workers=3))
        with pytest.raises(CloudError):
            client.backup(MemorySource(files))

    def test_failed_session_does_not_poison_next(self, files):
        # After a failed session the client can run a fresh one; the
        # failed session left no manifest, so it is simply absent.
        cloud = FlakyBackend(fail_on_put=2)
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB))
        with pytest.raises(CloudError):
            client.backup(MemorySource(files), session_id=0)
        stats = client.backup(MemorySource(files), session_id=1)
        assert stats.files_total == len(files)
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == files
        with pytest.raises(ObjectNotFound):
            RestoreClient(cloud).restore_to_memory(0)


class TestSourceFailures:
    def test_unreadable_file_aborts_cleanly(self, files):
        from repro.core.source import SourceFile

        def broken_source():
            yield SourceFile(path="ok.doc", size=100, mtime_ns=0,
                             reader=lambda: bytes(100))
            yield SourceFile(path="bad.doc", size=100, mtime_ns=0,
                             reader=lambda: (_ for _ in ()).throw(
                                 OSError("disk error")))

        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config())
        with pytest.raises(OSError):
            client.backup(broken_source())

    def test_walk_skips_vanished_files(self, tmp_path):
        # walk_files tolerates entries disappearing mid-scan.
        from repro.util.io import walk_files
        (tmp_path / "a.txt").write_bytes(b"x")
        stats = list(walk_files(tmp_path))
        assert len(stats) == 1


class TestRestoreFailures:
    def test_truncated_container_detected(self, files, rng):
        from repro.core import naming
        from repro.errors import IntegrityError
        cloud = InMemoryBackend()
        BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB)).backup(MemorySource(files))
        key = cloud.list(naming.CONTAINER_PREFIX)[0]
        cloud._objects[key] = cloud._objects[key][:-100]
        with pytest.raises(IntegrityError):
            RestoreClient(cloud).restore_to_memory(0)

    def test_manifest_garbage_rejected(self, files):
        from repro.core import naming
        from repro.errors import RestoreError
        cloud = InMemoryBackend()
        BackupClient(cloud, aa_dedupe_config()).backup(MemorySource(files))
        cloud._objects[naming.manifest_key(0)] = b"{not json"
        with pytest.raises((RestoreError, ValueError)):
            RestoreClient(cloud).restore_to_memory(0)
