"""Tests for the metric formulas and the figure-regeneration functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cross_application_sharing,
    fig1_fig2_size_distribution,
    fig3_hash_overhead,
    fig4_throughputs,
    table1_redundancy,
)
from repro.metrics import (
    Table,
    backup_window_seconds,
    bytes_saved_per_second,
    cloud_cost,
    dedup_efficiency,
    dedup_ratio,
    session_energy_joules,
)
from repro.util.units import GB, MB


class TestDedupMetrics:
    def test_dedup_ratio(self):
        assert dedup_ratio(100, 50) == 2.0
        assert dedup_ratio(0, 0) == 1.0
        assert dedup_ratio(10, 0) == float("inf")

    def test_bytes_saved_per_second(self):
        assert bytes_saved_per_second(100, 40, 10) == 6.0

    def test_formulations_agree(self):
        # DE = SC/time == (1 - 1/DR) * DT.
        before, after, seconds = 1000.0, 250.0, 8.0
        by_definition = bytes_saved_per_second(before, after, seconds)
        dr = dedup_ratio(before, after)
        dt = before / seconds
        assert dedup_efficiency(dr, dt) == pytest.approx(by_definition)

    @given(st.floats(1, 1e12), st.floats(0.5, 1e12), st.floats(0.001, 1e6))
    @settings(max_examples=40)
    def test_property_equivalence(self, before, after, seconds):
        if after > before:
            before, after = after, before
        lhs = bytes_saved_per_second(before, after, seconds)
        rhs = dedup_efficiency(dedup_ratio(before, after), before / seconds)
        # The (1 - 1/DR) form cancels catastrophically when after is
        # within a few ULPs of before at the 1e12 scale, so the two
        # formulations only agree to ~1e-7 relative there.
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            dedup_efficiency(0, 100)


class TestWindowMetric:
    def test_transfer_bound(self):
        # DT huge -> window = DS/(DR*NT).
        w = backup_window_seconds(35 * GB, dedup_throughput=1e12,
                                  dedup_ratio=20, network_throughput=500_000)
        assert w == pytest.approx(35 * GB / (20 * 500_000))

    def test_dedup_bound(self):
        w = backup_window_seconds(35 * GB, dedup_throughput=500_000,
                                  dedup_ratio=20, network_throughput=1e12)
        assert w == pytest.approx(35 * GB / 500_000)

    def test_serial(self):
        w = backup_window_seconds(GB, 1e6, 1.0, 1e6, pipelined=False)
        assert w == pytest.approx(2 * GB / 1e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            backup_window_seconds(GB, 0, 1, 1)


class TestCostMetric:
    def test_breakdown(self):
        b = cloud_cost(stored_bytes=10 * GB, uploaded_bytes=5 * GB,
                       put_requests=20_000)
        assert b.storage == pytest.approx(1.4)
        assert b.transfer == pytest.approx(0.5)
        assert b.requests == pytest.approx(0.2)
        assert b.total == pytest.approx(2.1)


class TestEnergyMetric:
    def test_dedup_only(self):
        assert session_energy_joules(100) == pytest.approx(100 * 42)

    def test_full_session(self):
        full = session_energy_joules(100, 50, dedup_only=False)
        assert full > session_energy_joules(100)


class TestTableFormatter:
    def test_render(self):
        t = Table(["a", "b"], title="T")
        t.add_row(["x", 1.5])
        text = t.render()
        assert "T" in text and "x" in text and "1.50" in text

    def test_row_width_checked(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_alignment(self):
        t = Table(["name", "val"])
        t.add_row(["aa", 1])
        t.add_row(["bbbb", 22])
        lines = t.render().splitlines()
        assert len(lines[1]) >= len(lines[2].rstrip()) - 1


class TestFigureFunctions:
    def test_fig1_fig2_anchors(self):
        rows = fig1_fig2_size_distribution(n_files=100_000, seed=5)
        assert len(rows) == 3
        tiny, _mid, large = rows
        # Paper anchors within tolerance.
        assert tiny.count_share == pytest.approx(0.61, abs=0.04)
        assert tiny.capacity_share < 0.05
        assert large.count_share == pytest.approx(0.014, abs=0.01)
        assert large.capacity_share == pytest.approx(0.75, abs=0.1)
        assert sum(r.count_share for r in rows) == pytest.approx(1.0)
        assert sum(r.capacity_share for r in rows) == pytest.approx(1.0)

    def test_table1_shapes(self):
        rows = {r.app: r for r in table1_redundancy(
            total_bytes=250 * MB, seed=6)}
        assert len(rows) == 12
        # Compressed media: negligible sub-file redundancy.
        for app in ("avi", "mp3", "iso", "dmg", "rar", "jpg"):
            assert rows[app].sc_dr < 1.03
            assert rows[app].cdc_dr < 1.03
        # VM images: SC beats CDC (Observation 3).
        assert rows["vmdk"].sc_dr > rows["vmdk"].cdc_dr
        assert rows["vmdk"].sc_dr == pytest.approx(1.286, abs=0.1)
        # Dynamic documents: both find real redundancy.
        assert rows["doc"].sc_dr > 1.1
        assert rows["doc"].cdc_dr > 1.1

    def test_cross_application_sharing_negligible(self):
        shared, total = cross_application_sharing(total_bytes=60 * MB,
                                                  seed=8)
        assert total > 1000
        # Observation 4: the paper found ONE shared chunk; we assert
        # essentially-zero sharing.
        assert shared <= 2

    def test_fig3_orderings(self):
        times = fig3_hash_overhead()
        for chunking in ("wfc", "sc"):
            assert times[(chunking, "rabin12")] < times[(chunking, "md5")] \
                < times[(chunking, "sha1")]
        # WFC ~= SC for the same hash (capacity-dominated).
        for h in ("rabin12", "md5", "sha1"):
            assert times[("sc", h)] < 1.4 * times[("wfc", h)]

    def test_fig4_orderings(self):
        thr = fig4_throughputs()
        for h in ("rabin12", "md5", "sha1"):
            assert thr[("wfc", h)] > thr[("sc", h)] > thr[("cdc", h)]
        for c in ("wfc", "sc", "cdc"):
            assert thr[(c, "rabin12")] > thr[(c, "md5")] > thr[(c, "sha1")]

    def test_fig4_with_disk(self):
        free = fig4_throughputs(include_disk=False)
        gated = fig4_throughputs(include_disk=True)
        for key in free:
            assert gated[key] < free[key]
