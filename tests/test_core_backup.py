"""Integration tests for the backup engine: the AA-Dedupe pipeline and
its observable behaviours (filtering, chunking policy, dedup, containers,
index sync, manifests)."""

import numpy as np
import pytest

from repro.classify.filetype import Category
from repro.classify.policy import DedupPolicy
from repro.cloud import InMemoryBackend
from repro.core import (
    BackupClient,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
)
from repro.core import naming
from repro.core.options import SchemeConfig
from repro.errors import ConfigError
from repro.util.units import KIB


@pytest.fixture()
def dataset(rng):
    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    doc = blob(60_000)
    files = {
        "music/song.mp3": blob(50_000),
        "music/copy.mp3": None,
        "docs/report.doc": doc,
        "docs/report_v2.doc": doc[:30_000] + b"EDITED!" + doc[30_000:],
        "vm/image.vmdk": blob(100_000),
        "misc/readme.txt": blob(12_000),
        "misc/tiny.txt": blob(512),
        "misc/empty.log": b"",
    }
    files["music/copy.mp3"] = files["music/song.mp3"]
    return files


def small_config(**overrides):
    """AA config with a small container so sealing happens in tests."""
    base = dict(container_size=64 * KIB)
    base.update(overrides)
    return aa_dedupe_config(**base)


class TestAAPipeline:
    def test_roundtrip_bit_exact(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(dataset))
        restored, report = RestoreClient(cloud).restore_to_memory(0)
        assert restored == dataset
        assert report.files_restored == len(dataset)
        assert not report.corrupt

    def test_tiny_files_filtered(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        stats = client.backup(MemorySource(dataset))
        # tiny.txt (512 B) and empty.log are under the 10 KiB threshold.
        assert stats.files_tiny == 2
        manifest = client.manifests[0]
        assert manifest.get("misc/tiny.txt").tiny
        assert not manifest.get("misc/readme.txt").tiny

    def test_duplicate_file_dedups_whole(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        stats = client.backup(MemorySource(dataset))
        # copy.mp3 is byte-identical: WFC dedup removes its 50 kB.
        assert stats.bytes_saved >= 50_000

    def test_intra_session_cdc_dedup(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        stats = client.backup(MemorySource(dataset))
        # report_v2.doc shares most chunks with report.doc via CDC.
        manifest = client.manifests[0]
        refs1 = {r.fingerprint for r in manifest.get("docs/report.doc").refs}
        refs2 = {r.fingerprint
                 for r in manifest.get("docs/report_v2.doc").refs}
        assert len(refs1 & refs2) >= 1
        assert stats.dedup_ratio > 1.0

    def test_unchanged_second_session_mostly_dedups(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(dataset))
        stats2 = client.backup(MemorySource(dataset))
        # Everything except re-packed tiny files dedups.
        tiny_bytes = 512  # empty.log contributes nothing
        assert stats2.bytes_unique == tiny_bytes
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == dataset

    def test_app_aware_index_populated_per_app(self, dataset):
        client = BackupClient(InMemoryBackend(), small_config())
        client.backup(MemorySource(dataset))
        sizes = client.index.sizes()
        assert "mp3" in sizes and "doc" in sizes and "vmdk" in sizes
        # WFC: one entry per unique mp3 file.
        assert sizes["mp3"] == 1
        # SC on 100 kB vmdk at 8 KiB: 13 chunks.
        assert sizes["vmdk"] == 13

    def test_containers_uploaded_and_padded(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(dataset))
        container_keys = cloud.list(naming.CONTAINER_PREFIX)
        assert container_keys
        # Non-oversized containers are exactly container_size.
        sizes = {len(cloud.get(k)) for k in container_keys}
        assert 64 * KIB in sizes

    def test_manifest_uploaded(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(dataset))
        assert cloud.exists(naming.manifest_key(0))

    def test_index_synced_to_cloud(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config(index_sync_interval=1))
        client.backup(MemorySource(dataset))
        keys = cloud.list(naming.INDEX_PREFIX)
        assert any("mp3" in k for k in keys)

    def test_index_sync_disabled(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config(index_sync_interval=0))
        client.backup(MemorySource(dataset))
        assert cloud.list(naming.INDEX_PREFIX) == []

    def test_op_accounting(self, dataset):
        client = BackupClient(InMemoryBackend(), small_config())
        stats = client.backup(MemorySource(dataset))
        ops = stats.ops
        # Compressed bytes hashed with rabin12, static with md5,
        # dynamic with sha1 (+ tiny files with sha1).
        assert ops.hashed_bytes["rabin12"] == 100_000
        assert ops.hashed_bytes["md5"] == 100_000
        assert ops.hashed_bytes["sha1"] >= 12_000
        assert ops.cdc_scanned_bytes >= 120_000
        assert ops.chunks_produced > 15
        assert ops.index_lookups == ops.chunks_produced
        assert ops.read_bytes == sum(len(v) for v in dataset.values())

    def test_dedup_ratio_definition(self, dataset):
        client = BackupClient(InMemoryBackend(), small_config())
        stats = client.backup(MemorySource(dataset))
        assert stats.dedup_ratio == pytest.approx(
            stats.bytes_scanned / stats.bytes_unique)
        assert stats.bytes_saved == stats.bytes_scanned - stats.bytes_unique

    def test_pipelined_uploads_equivalent(self, dataset):
        plain_cloud = InMemoryBackend()
        BackupClient(plain_cloud, small_config()).backup(
            MemorySource(dataset))
        piped_cloud = InMemoryBackend()
        BackupClient(piped_cloud, small_config(pipeline_uploads=True)
                     ).backup(MemorySource(dataset))
        r1, _ = RestoreClient(plain_cloud).restore_to_memory(0)
        r2, _ = RestoreClient(piped_cloud).restore_to_memory(0)
        assert r1 == r2 == dataset

    def test_explicit_session_ids(self, dataset):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        stats = client.backup(MemorySource(dataset), session_id=41)
        assert stats.session_id == 41
        assert cloud.exists(naming.manifest_key(41))
        stats2 = client.backup(MemorySource(dataset))
        assert stats2.session_id == 42

    def test_rerunning_old_session_id_never_rewinds_counter(self, dataset):
        # Regression: backup(session_id=k) used to set _next_session to
        # k+1 unconditionally, so re-running an *older* explicit id made
        # the next auto id collide with — and silently overwrite — a
        # newer manifest.
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(dataset))            # auto id 0
        client.backup(MemorySource(dataset))            # auto id 1
        newer = cloud.get(naming.manifest_key(1))
        client.backup(MemorySource(dataset), session_id=0)  # re-run old
        stats = client.backup(MemorySource(dataset))    # auto id again
        assert stats.session_id == 2
        assert cloud.get(naming.manifest_key(1)) == newer
        assert set(client.manifests) == {0, 1, 2}


class TestConfigValidation:
    def test_bad_index_layout(self):
        with pytest.raises(ConfigError):
            SchemeConfig(name="x", index_layout="nope",
                         fixed_policy=DedupPolicy("wfc", "md5"))

    def test_policy_exclusivity(self):
        with pytest.raises(ConfigError):
            SchemeConfig(name="x")  # neither table nor fixed
        with pytest.raises(ConfigError):
            SchemeConfig(name="x", fixed_policy=DedupPolicy("wfc", "md5"),
                         policy_table={})

    def test_incremental_needs_no_policy(self):
        cfg = SchemeConfig(name="inc", incremental_only=True,
                           tiny_file_threshold=0, use_containers=False)
        assert cfg.incremental_only

    def test_namespace_routing(self):
        cfg = aa_dedupe_config()
        policy = cfg.policy_for(Category.COMPRESSED)
        assert cfg.index_namespace("mp3", policy) == "mp3"
        global_cfg = cfg.with_(index_layout="global")
        assert global_cfg.index_namespace("mp3", policy) == "global"
        tier_cfg = cfg.with_(index_layout="tier")
        assert tier_cfg.index_namespace("mp3", policy) == "wfc"

    def test_with_override(self):
        cfg = aa_dedupe_config().with_(container_size=128 * KIB)
        assert cfg.container_size == 128 * KIB
        assert cfg.name == "AA-Dedupe"
