"""Behavioural tests for the four baseline schemes, and the qualitative
relationships between schemes that the paper's evaluation relies on."""

import numpy as np
import pytest

from repro.baselines import (
    aa_dedupe_config,
    all_scheme_configs,
    avamar_config,
    backuppc_config,
    jungle_disk_config,
    sam_config,
)
from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, RestoreClient
from repro.core import naming


@pytest.fixture()
def week1(rng):
    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    doc = blob(80_000)
    files = {
        "m/a.mp3": blob(60_000),
        "m/a_copy.mp3": None,
        "d/r.doc": doc,
        "v/img.vmdk": blob(90_000),
        "t/small.txt": blob(2_000),
    }
    files["m/a_copy.mp3"] = files["m/a.mp3"]
    mtimes = {p: 1_000 for p in files}
    return files, mtimes


@pytest.fixture()
def week2(week1, rng):
    files, mtimes = week1
    files2 = dict(files)
    mtimes2 = dict(mtimes)
    # Edit the doc mid-file (CDC-friendly change).
    doc = files["d/r.doc"]
    files2["d/r.doc"] = doc[:40_000] + b"WEEK2-EDIT" + doc[40_000:]
    mtimes2["d/r.doc"] = 2_000
    return files2, mtimes2


def run(cfg, *snapshots):
    cloud = InMemoryBackend()
    client = BackupClient(cloud, cfg)
    stats = [client.backup(MemorySource(files, mtimes))
             for files, mtimes in snapshots]
    return cloud, client, stats


class TestJungleDisk:
    def test_no_dedup_within_session(self, week1):
        _cloud, _client, (s,) = run(jungle_disk_config(), week1)
        # The duplicate mp3 is uploaded twice: no dedup at all.
        assert s.bytes_unique == s.bytes_scanned

    def test_unchanged_files_skipped(self, week1, week2):
        _cloud, _client, (s1, s2) = run(jungle_disk_config(), week1, week2)
        assert s2.files_unchanged == 4
        # Only the edited doc re-uploads.
        assert s2.bytes_unique == 80_000 + 10

    def test_restorable(self, week1, week2):
        cloud, _client, _ = run(jungle_disk_config(), week1, week2)
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out == week2[0]

    def test_whole_files_as_objects(self, week1):
        cloud, _client, _ = run(jungle_disk_config(), week1)
        assert len(cloud.list(naming.FILE_PREFIX)) == 5
        assert cloud.list(naming.CONTAINER_PREFIX) == []


class TestBackupPC:
    def test_file_level_dedup(self, week1):
        _cloud, _client, (s,) = run(backuppc_config(), week1)
        # Identical mp3 dedups whole; everything else unique.
        assert s.bytes_saved == 60_000

    def test_modified_file_reuploads_whole(self, week1, week2):
        _cloud, _client, (_s1, s2) = run(backuppc_config(), week1, week2)
        # File-level granularity cannot exploit the partial overlap.
        assert s2.bytes_unique == 80_000 + 10

    def test_uses_md5_only(self, week1):
        _cloud, _client, (s,) = run(backuppc_config(), week1)
        assert set(s.ops.hashed_bytes) == {"md5"}

    def test_single_global_index(self, week1):
        _cloud, client, _ = run(backuppc_config(), week1)
        assert client.index.apps == ["global"]


class TestAvamar:
    def test_chunk_level_dedup_catches_partial_overlap(self, week1, week2):
        _cloud, _client, (_s1, s2) = run(avamar_config(), week1, week2)
        # CDC dedups the unchanged prefix/suffix of the edited doc.
        assert s2.bytes_unique < 40_000

    def test_sha1_everywhere(self, week1):
        _cloud, _client, (s,) = run(avamar_config(), week1)
        assert set(s.ops.hashed_bytes) == {"sha1"}
        # Every byte is CDC-scanned — the computational burden.
        assert s.ops.cdc_scanned_bytes == s.bytes_scanned

    def test_per_chunk_uploads(self, week1):
        cloud, _client, (s,) = run(avamar_config(), week1)
        chunk_objects = len(cloud.list(naming.CHUNK_PREFIX))
        assert chunk_objects == s.chunks_unique
        assert chunk_objects > 20  # fine-grained

    def test_no_tiny_filter(self, week1):
        _cloud, _client, (s,) = run(avamar_config(), week1)
        assert s.files_tiny == 0

    def test_restorable(self, week1, week2):
        cloud, _client, _ = run(avamar_config(), week1, week2)
        for sid, (files, _m) in enumerate([week1, week2]):
            out, _ = RestoreClient(cloud).restore_to_memory(sid)
            assert out == files


class TestSAM:
    def test_semantic_partition(self, week1):
        _cloud, _client, (s,) = run(sam_config(), week1)
        # Compressed media at whole-file granularity (never CDC-scanned),
        # uncompressed data at chunk granularity.
        compressed_bytes = 120_000  # the two mp3s
        assert s.ops.cdc_scanned_bytes == s.bytes_scanned \
            - compressed_bytes - 2_000  # small.txt is tiny-filtered
        # Identical second session dedups fully at the right tiers.
        _cloud2, _client2, (s1, s2) = run(sam_config(), week1, week1)
        assert s2.bytes_unique <= 2_000  # only tiny repack
        assert s2.ops.index_hits >= s2.ops.chunks_produced

    def test_compressed_files_file_level(self, week1):
        _cloud, client, _ = run(sam_config(), week1)
        # Tier layout: "wfc" tier for compressed, "cdc" tier for the rest.
        assert set(client.index.apps) == {"wfc", "cdc"}

    def test_file_level_first_engine_feature(self, week1):
        # SAM-style file-tier shortcut remains available as an engine
        # option: a second identical session re-chunks nothing.
        cfg = sam_config(file_level_first=True)
        _cloud, _client, (s1, s2) = run(cfg, week1, week1)
        assert s2.ops.cdc_scanned_bytes == 0
        assert s2.ops.chunks_produced == 2  # the two WFC mp3 "chunks"

    def test_space_close_to_avamar(self, week1, week2):
        _c1, _cl1, (a1, a2) = run(avamar_config(), week1, week2)
        _c2, _cl2, (s1, s2) = run(sam_config(), week1, week2)
        total_avamar = a1.bytes_unique + a2.bytes_unique
        total_sam = s1.bytes_unique + s2.bytes_unique
        assert total_sam <= 1.15 * total_avamar

    def test_restorable(self, week1, week2):
        cloud, _client, _ = run(sam_config(), week1, week2)
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out == week2[0]


class TestCrossSchemeShape:
    """The qualitative orderings the paper's figures rest on."""

    def test_all_schemes_restore_bit_exact(self, week1, week2):
        for cfg in all_scheme_configs():
            cloud, _client, _ = run(cfg, week1, week2)
            for sid, (files, _m) in enumerate([week1, week2]):
                out, _ = RestoreClient(cloud).restore_to_memory(sid)
                assert out == files, cfg.name

    def test_dedup_schemes_beat_incremental_on_storage(self, week1, week2):
        stored = {}
        for cfg in all_scheme_configs():
            cloud, _client, stats = run(cfg, week1, week2)
            stored[cfg.name] = sum(s.bytes_unique for s in stats)
        assert stored["BackupPC"] < stored["JungleDisk"]
        assert stored["Avamar"] < stored["JungleDisk"]
        assert stored["AA-Dedupe"] < stored["JungleDisk"]

    def test_aa_space_within_reach_of_avamar(self, week1, week2):
        results = {}
        for cfg in all_scheme_configs():
            _cloud, _client, stats = run(cfg, week1, week2)
            results[cfg.name] = sum(s.bytes_unique for s in stats)
        # "AA-Dedupe achieves similar or better space efficiency than
        # Avamar and SAM" — allow small slack for the tiny-file repack.
        assert results["AA-Dedupe"] <= 1.10 * results["Avamar"]
        assert results["AA-Dedupe"] <= 1.10 * results["SAM"]

    def test_aa_fewest_upload_requests_among_dedupers(self, week1):
        puts = {}
        for cfg in all_scheme_configs():
            _cloud, _client, (s,) = run(cfg, week1)
            puts[cfg.name] = s.put_requests
        assert puts["AA-Dedupe"] < puts["Avamar"]
        assert puts["AA-Dedupe"] < puts["SAM"]

    def test_aa_hashes_compressed_data_cheaply(self, week1):
        _cloud, _client, (s,) = run(aa_dedupe_config(), week1)
        # The two mp3 files (compressed) are hashed with Rabin, not SHA-1.
        assert s.ops.hashed_bytes["rabin12"] == 120_000
        assert s.ops.cdc_scanned_bytes < s.bytes_scanned
