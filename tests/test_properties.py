"""Cross-cutting property-based tests: system-level invariants that must
hold for arbitrary inputs, not just the curated fixtures."""

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    aa_dedupe_config,
    avamar_config,
    backuppc_config,
    jungle_disk_config,
    sam_config,
)
from repro.cloud import InMemoryBackend
from repro.container import ContainerReader, ContainerWriter
from repro.core import BackupClient, MemorySource, RestoreClient, collect_garbage
from repro.util.units import KIB

# Small but adversarial path/content strategy: collisions in names,
# empty files, sub-10KB (tiny) and over-10KB (chunked) files, nested
# directories, unicode names.
_paths = st.text(
    alphabet=st.sampled_from("abßé/._-"), min_size=1, max_size=12,
).map(lambda s: s.strip("/")).filter(
    lambda s: s and "//" not in s and not s.endswith("/"))

_contents = st.one_of(
    st.binary(max_size=64),
    st.binary(min_size=11_000, max_size=14_000),
    st.binary(min_size=1, max_size=300).map(lambda b: b * 64),  # redundant
)

_file_dicts = st.dictionaries(_paths, _contents, min_size=1, max_size=6)

_slow = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.data_too_large,
                                        HealthCheck.too_slow])


def _named(files, ext):
    """Give every path a known extension so classification is exercised."""
    return {f"{path}.{ext}": data
            for path, data in files.items()}


class TestBackupRestoreProperty:
    @pytest.mark.parametrize("config_factory", [
        aa_dedupe_config, jungle_disk_config, backuppc_config,
        avamar_config, sam_config])
    @given(files=_file_dicts, ext=st.sampled_from(
        ["mp3", "doc", "vmdk", "txt", "bin"]))
    @_slow
    def test_roundtrip_any_scheme_any_content(self, config_factory,
                                              files, ext):
        """backup(x) then restore == x for every scheme and any input."""
        files = _named(files, ext)
        cloud = InMemoryBackend()
        config = config_factory()
        if config.use_containers:
            config = config.with_(container_size=32 * KIB)
        client = BackupClient(cloud, config)
        client.backup(MemorySource(files, {p: 1 for p in files}))
        restored, _report = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files

    @given(files=_file_dicts)
    @_slow
    def test_second_backup_of_same_data_uploads_no_chunks(self, files):
        files = _named(files, "doc")
        client = BackupClient(InMemoryBackend(),
                              aa_dedupe_config(container_size=32 * KIB))
        client.backup(MemorySource(files, {p: 1 for p in files}))
        stats2 = client.backup(MemorySource(files, {p: 1 for p in files}))
        assert stats2.chunks_unique == 0

    @given(files=_file_dicts)
    @_slow
    def test_dedup_never_inflates_payload(self, files):
        """Unique payload bytes never exceed scanned bytes."""
        files = _named(files, "txt")
        client = BackupClient(InMemoryBackend(),
                              aa_dedupe_config(container_size=32 * KIB))
        stats = client.backup(MemorySource(files, {p: 1 for p in files}))
        assert stats.bytes_unique <= stats.bytes_scanned
        assert stats.bytes_saved >= 0

    @given(files=_file_dicts, retain_first=st.booleans())
    @_slow
    def test_gc_preserves_retained_sessions(self, files, retain_first):
        """After GC with any retain choice, retained sessions restore."""
        files = _named(files, "doc")
        files2 = dict(files)
        some_path = next(iter(files2))
        files2[some_path] = files2[some_path] + b"!CHANGED!"
        cloud = InMemoryBackend()
        client = BackupClient(cloud,
                              aa_dedupe_config(container_size=32 * KIB))
        client.backup(MemorySource(files, {p: 1 for p in files}))
        client.backup(MemorySource(files2, {p: 2 for p in files2}))
        keep = 0 if retain_first else 1
        collect_garbage(cloud, [keep])
        restored, _ = RestoreClient(cloud).restore_to_memory(keep)
        assert restored == (files if keep == 0 else files2)


class TestContainerProperty:
    @given(payloads=st.lists(st.binary(min_size=1, max_size=2000),
                             min_size=1, max_size=12),
           pad=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_pack_parse_extract(self, payloads, pad):
        writer = ContainerWriter(container_id=1, capacity=128 * KIB)
        expected = []
        for i, payload in enumerate(payloads):
            fp = hashlib.sha1(bytes([i]) + payload).digest()
            offset = writer.append(fp, payload)
            expected.append((fp, offset, payload))
        reader = ContainerReader(writer.seal(pad_to_capacity=pad))
        for fp, offset, payload in expected:
            assert reader.read_at(offset, len(payload)) == payload
            assert reader.get(fp) == payload

    @given(payloads=st.lists(st.binary(min_size=1, max_size=500),
                             min_size=1, max_size=6),
           flip=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_any_single_bitflip_detected(self, payloads, flip):
        from repro.errors import ContainerFormatError
        writer = ContainerWriter(container_id=2, capacity=64 * KIB)
        for i, payload in enumerate(payloads):
            writer.append(hashlib.sha1(bytes([i])).digest(), payload)
        blob = bytearray(writer.seal(pad_to_capacity=False))
        position = flip % len(blob)
        blob[position] ^= 1 << (flip % 8)
        try:
            reader = ContainerReader(bytes(blob))
        except ContainerFormatError:
            return  # detected — good
        # Only a flip inside zero-padding regions could parse cleanly;
        # unpadded containers have none, so reaching here means the CRC
        # failed to detect a corruption — a genuine bug.
        raise AssertionError(
            f"bit flip at {position} of {len(blob)} went undetected")


# ---------------------------------------------------------------------------
# Chunker-family invariants: every registered chunker — the paper's
# WFC/SC/Rabin plus the fast family (gear, fastcdc, seqcdc) — must
# satisfy the same partition contract on arbitrary inputs.
from repro.chunking import CDC_FAMILY  # noqa: E402
from repro.chunking.base import available_chunkers, get_chunker  # noqa: E402

_chunk_inputs = st.one_of(
    st.binary(max_size=200),
    st.binary(min_size=1_000, max_size=60_000),
    st.binary(min_size=1, max_size=64).map(lambda b: b * 700))


class TestChunkerFamilyInvariants:
    @pytest.mark.parametrize("name", sorted(available_chunkers()))
    @given(data=_chunk_inputs)
    @_slow
    def test_partition_bounds_determinism(self, name, data):
        """Chunks concatenate to the input, respect the chunker's size
        bounds (the final tail chunk is exempt from the minimum), and
        the output is deterministic."""
        chunker = get_chunker(name)
        chunks = chunker.chunk(data)
        assert b"".join(c.data for c in chunks) == data
        if not data:
            assert chunks == []
            return
        offset = 0
        for chunk in chunks:
            assert chunk.offset == offset
            assert chunk.length == len(chunk.data)
            offset += chunk.length
        min_size = getattr(chunker, "min_size", 1)
        max_size = getattr(chunker, "max_size", float("inf"))
        for chunk in chunks[:-1]:
            assert min_size <= chunk.length <= max_size
        assert 1 <= chunks[-1].length <= max_size
        # Determinism: a fresh instance cuts identically.
        assert get_chunker(name).cut_points(data) == \
            chunker.cut_points(data)

    @pytest.mark.parametrize("name", sorted(CDC_FAMILY))
    @given(data=_chunk_inputs)
    @_slow
    def test_vectorized_matches_reference(self, name, data):
        """Differential oracle: the NumPy slab scan of every CDC-family
        engine cuts exactly where its pure-Python reference does."""
        fast = get_chunker(name)
        slow = get_chunker(name)
        slow.use_numpy = False
        assert fast.cut_points(data) == slow.cut_points(data)

    @pytest.mark.parametrize("name", ["cdc", "gear", "fastcdc"])
    @pytest.mark.parametrize("prefix_len", [1, 7, 2 * KIB])
    def test_prefix_insertion_boundary_stability(self, rng, name,
                                                 prefix_len):
        """Gear and FastCDC boundaries depend only on a fixed byte
        window, so a prefix insertion re-synchronises downstream
        boundaries just as it does for Rabin (same threshold)."""
        chunker = get_chunker(name)
        data = rng.integers(0, 256, 120_000, dtype=np.uint8).tobytes()
        prefix = rng.integers(0, 256, prefix_len,
                              dtype=np.uint8).tobytes()
        base = {hashlib.sha1(c.data).digest()
                for c in chunker.chunk(data)}
        shifted = chunker.chunk(prefix + data)
        shared = sum(c.length for c in shifted
                     if hashlib.sha1(c.data).digest() in base)
        assert shared >= 0.5 * len(data)


# ---------------------------------------------------------------------------
# CDC invariants (paper Sec. III-C): any input, any parameterisation.
_cdc_params = [
    dict(),                                               # paper defaults
    dict(window=16),
    dict(window=64),
    dict(avg_size=4 * KIB, min_size=1 * KIB, max_size=8 * KIB),
]


class TestCDCInvariants:
    @pytest.mark.parametrize("params", _cdc_params,
                             ids=["paper", "w16", "w64", "small"])
    @given(data=st.one_of(
        st.binary(max_size=200),
        st.binary(min_size=1_000, max_size=60_000),
        st.binary(min_size=1, max_size=64).map(lambda b: b * 700)))
    @_slow
    def test_bounds_and_concatenation(self, params, data):
        """Every chunk respects [min, max]; chunks reproduce the input."""
        from repro.chunking import RabinCDC

        chunker = RabinCDC(**params)
        chunks = chunker.chunk(data)
        assert b"".join(c.data for c in chunks) == data
        if not data:
            assert chunks == []
            return
        offset = 0
        for chunk in chunks:
            assert chunk.offset == offset
            assert chunk.length == len(chunk.data)
            offset += chunk.length
        # all but the final (tail) chunk obey the clamps
        for chunk in chunks[:-1]:
            assert chunker.min_size <= chunk.length <= chunker.max_size
        assert 1 <= chunks[-1].length <= chunker.max_size

    @pytest.mark.parametrize("window", [16, 48, 64])
    @pytest.mark.parametrize("prefix_len", [1, 7, 2 * KIB])
    def test_prefix_insertion_boundary_stability(self, rng, window,
                                                 prefix_len):
        """Shifting content by a prefix must not re-chunk everything.

        High-entropy (seeded-random) data gives the rolling hash dense
        cut candidates, so boundaries resynchronise shortly after the
        insertion point and the bulk of the chunks recur bit-identically
        — the content-defined property that beats static chunking on
        edited files.  (Low-entropy data would legitimately diverge via
        forced max-size cuts, so it is out of scope here.)
        """
        from repro.chunking import RabinCDC

        chunker = RabinCDC(window=window)
        data = rng.integers(0, 256, 120_000, dtype=np.uint8).tobytes()
        prefix = rng.integers(0, 256, prefix_len,
                              dtype=np.uint8).tobytes()
        base = {hashlib.sha1(c.data).digest()
                for c in chunker.chunk(data)}
        shifted = chunker.chunk(prefix + data)
        shared = sum(c.length for c in shifted
                     if hashlib.sha1(c.data).digest() in base)
        assert shared >= 0.5 * len(data)

    @given(data=st.binary(min_size=1, max_size=40_000))
    @_slow
    def test_cut_points_sorted_and_in_range(self, data):
        from repro.chunking import RabinCDC

        chunker = RabinCDC()
        cuts = list(chunker.cut_points(data))
        assert cuts == sorted(set(cuts))
        assert all(0 < c <= len(data) for c in cuts)
        assert cuts[-1] == len(data)  # final cut closes the buffer
