"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic RNG."""
    return np.random.default_rng(0xAADE)


@pytest.fixture(scope="session")
def random_bytes(rng) -> bytes:
    """256 KiB of deterministic pseudo-random bytes."""
    return rng.integers(0, 256, size=256 * 1024, dtype=np.uint8).tobytes()
