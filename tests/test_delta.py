"""Tests for the similarity + delta-compression stage (repro.delta).

Covers the codec (hypothesis round-trip properties), sketching, the
bounded similarity index, the end-to-end backup/restore/scrub/GC
integration, delta chains at exactly the depth bound, and the GC
regression that a delta base must stay live while any retained delta
references it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.memory import InMemoryBackend
from repro.core import naming
from repro.core.backup import BackupClient
from repro.core.gc import collect_garbage
from repro.core.options import SchemeConfig, aa_dedupe_config
from repro.core.recipe import ChunkRef, FileEntry, Manifest
from repro.core.restore import RestoreClient
from repro.core.scrub import scrub_cloud
from repro.core.source import MemorySource
from repro.delta import (
    DeltaError,
    SimilarityIndex,
    apply_delta,
    compute_sketch,
    delta_target_length,
    encode_delta,
    encode_if_worthwhile,
    validate_delta,
)
from repro.errors import ConfigError, RestoreError
from repro.hashing import get_hash, hash_for_digest_len


def _delta_config(**overrides) -> SchemeConfig:
    base = dict(delta_compress=True, container_size=64 * 1024,
                pad_containers=False)
    base.update(overrides)
    return aa_dedupe_config(**base)


def _edit(data: bytes, seed: int, n_edits: int = 4,
          insert: int = 32) -> bytes:
    """A few in-place edits plus one insertion — document churn."""
    r = np.random.default_rng(seed)
    arr = bytearray(data)
    for _ in range(n_edits):
        pos = int(r.integers(0, max(1, len(arr) - 24)))
        arr[pos:pos + 16] = r.integers(0, 256, 16, dtype=np.uint8).tobytes()
    pos = int(r.integers(0, len(arr) + 1))
    patch = r.integers(0, 256, insert, dtype=np.uint8).tobytes()
    return bytes(arr[:pos]) + patch + bytes(arr[pos:])


# ----------------------------------------------------------------------
class TestDeltaCodec:
    @given(base=st.binary(max_size=4096), target=st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, base, target):
        delta = encode_delta(base, target)
        assert apply_delta(base, delta) == target
        assert validate_delta(delta) == len(target)
        assert delta_target_length(delta) == len(target)

    @given(base=st.binary(max_size=2048))
    @settings(max_examples=25, deadline=None)
    def test_empty_target(self, base):
        delta = encode_delta(base, b"")
        assert apply_delta(base, delta) == b""
        # An empty target is never "worth" a delta extent.
        assert encode_if_worthwhile(base, b"") is None

    @given(data=st.binary(min_size=64, max_size=4096))
    @settings(max_examples=25, deadline=None)
    def test_identical_target_collapses(self, data):
        delta = encode_delta(data, data)
        assert apply_delta(data, delta) == data
        # Self-delta is almost all copy ops: tiny versus the target.
        assert len(delta) < max(64, len(data) // 4)
        assert encode_if_worthwhile(data, data) is not None

    def test_fully_dissimilar_rejected(self, rng):
        base = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        target = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        delta = encode_delta(base, target)
        assert apply_delta(base, delta) == target  # still correct...
        assert encode_if_worthwhile(base, target) is None  # ...not worth it

    def test_cutoff_boundary(self, rng):
        base = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        target = base[:4000] + b"\x01\x02\x03" + base[4000:]
        blob = encode_if_worthwhile(base, target, cutoff=0.5)
        assert blob is not None and len(blob) <= 0.5 * len(target)
        assert encode_if_worthwhile(base, target, cutoff=1e-9) is None

    def test_apply_rejects_garbage(self):
        with pytest.raises(DeltaError):
            apply_delta(b"base", b"not a delta blob")
        with pytest.raises(DeltaError):
            validate_delta(b"XXXX\x00\x00\x00\x00")

    def test_apply_rejects_out_of_range_copy(self, rng):
        base = rng.integers(0, 256, 1024, dtype=np.uint8).tobytes()
        delta = bytearray(encode_delta(base, base))
        # Corrupt the first copy op's offset far past the base.
        delta[9:13] = (2 ** 31).to_bytes(4, "big")
        with pytest.raises(DeltaError):
            apply_delta(base, bytes(delta))


# ----------------------------------------------------------------------
class TestSketchAndSimIndex:
    def test_sketch_deterministic_and_resemblance(self, rng):
        data = rng.integers(0, 256, 16_000, dtype=np.uint8).tobytes()
        near = _edit(data, 5)
        far = rng.integers(0, 256, 16_000, dtype=np.uint8).tobytes()
        assert compute_sketch(data) == compute_sketch(data)
        assert compute_sketch(data).matches(compute_sketch(near)) > 0
        assert compute_sketch(data).matches(compute_sketch(far)) == 0

    def test_probe_insert_discard(self, rng):
        data = rng.integers(0, 256, 8_000, dtype=np.uint8).tobytes()
        sketch = compute_sketch(data)
        sim = SimilarityIndex(capacity=64)
        assert sim.probe("doc", sketch) is None
        sim.insert("doc", sketch, b"fp-1")
        assert sim.probe("doc", compute_sketch(_edit(data, 9))) == b"fp-1"
        # Namespaces are isolated (application-aware).
        assert sim.probe("ppt", sketch) is None
        sim.discard("doc", b"fp-1")
        assert sim.probe("doc", sketch) is None

    def test_lru_eviction_bounded(self, rng):
        sim = SimilarityIndex(capacity=6)
        sketches = []
        for i in range(8):
            data = rng.integers(0, 256, 6_000, dtype=np.uint8).tobytes()
            sk = compute_sketch(data)
            sketches.append((sk, data))
            sim.insert("doc", sk, f"fp-{i}".encode())
        stats = sim.stats_for("doc")
        assert stats.evictions > 0
        assert sim.approximate_bytes() <= 6 * 28 + 64
        # The most recent insert is still resident.
        assert sim.probe("doc", sketches[-1][0]) == b"fp-7"


# ----------------------------------------------------------------------
class TestDeltaBackupIntegration:
    def _versions(self, rng, n=3, size=60_000):
        v = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        out = [v]
        for i in range(1, n):
            v = _edit(v, 100 + i)
            out.append(v)
        return out

    def test_versioned_doc_stores_deltas_and_restores(self, rng):
        versions = self._versions(rng)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config())
        stats = [client.backup(MemorySource({"report.doc": v}))
                 for v in versions]
        client.close()
        assert stats[0].chunks_delta == 0  # nothing to resemble yet
        assert stats[1].chunks_delta > 0
        assert stats[1].delta_bytes_saved > 0
        assert stats[1].bytes_unique < len(versions[1]) // 10
        assert stats[1].ops.sketch_bytes > 0
        assert stats[1].ops.delta_encode_bytes > 0
        restorer = RestoreClient(cloud)
        for sid, want in enumerate(versions):
            out, report = restorer.restore_to_memory(sid)
            assert out["report.doc"] == want
            if sid:
                assert report.deltas_applied > 0
        report = scrub_cloud(cloud)
        assert report.clean, report.problems
        assert report.deltas_validated > 0

    def test_delta_uploads_fewer_bytes_than_exact(self, rng):
        versions = self._versions(rng, n=4)
        uploaded = {}
        for name, cfg in [("delta", _delta_config()),
                          ("exact", _delta_config(delta_compress=False))]:
            cloud = InMemoryBackend()
            client = BackupClient(cloud, cfg)
            for v in versions:
                client.backup(MemorySource({"report.doc": v}))
            client.close()
            uploaded[name] = cloud.stats.bytes_uploaded
        assert uploaded["delta"] < uploaded["exact"]

    def test_repeat_of_delta_chunk_reuses_ref(self, rng):
        v0, v1 = self._versions(rng, n=2)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config())
        client.backup(MemorySource({"a.doc": v0}))
        s1 = client.backup(MemorySource({"a.doc": v1}))
        assert s1.chunks_delta > 0
        # Same content again: every chunk dedups (exact or delta-ref
        # reuse); no new payload bytes move.
        s2 = client.backup(MemorySource({"a.doc": v1}))
        client.close()
        assert s2.bytes_unique == 0
        assert s2.chunks_delta == 0
        out, _ = RestoreClient(cloud).restore_to_memory(2)
        assert out["a.doc"] == v1

    def test_chain_depth_capped_by_config(self, rng):
        versions = self._versions(rng, n=6)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config(delta_max_chain=2))
        for v in versions:
            client.backup(MemorySource({"a.doc": v}))
        client.close()
        deepest = 0
        for sid in range(len(versions)):
            manifest = Manifest.from_json(
                cloud.get(naming.manifest_key(sid)))
            for entry in manifest:
                for ref in entry.refs:
                    deepest = max(deepest, ref.chain_depth())
        assert deepest <= 2
        out, _ = RestoreClient(cloud).restore_to_memory(len(versions) - 1)
        assert out["a.doc"] == versions[-1]

    def test_object_mode_delta_round_trip(self, rng):
        v0, v1 = self._versions(rng, n=2, size=40_000)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config(use_containers=False))
        client.backup(MemorySource({"a.txt": v0}))
        s1 = client.backup(MemorySource({"a.txt": v1}))
        client.close()
        assert s1.chunks_delta > 0
        assert cloud.list(naming.DELTA_PREFIX)
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out["a.txt"] == v1
        assert scrub_cloud(cloud).clean

    def test_wfc_compressed_categories_bypass_delta(self, rng):
        blob = rng.integers(0, 256, 50_000, dtype=np.uint8).tobytes()
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config())
        client.backup(MemorySource({"a.mp3": blob}))
        s1 = client.backup(MemorySource({"a.mp3": _edit(blob, 3)}))
        client.close()
        assert s1.chunks_delta == 0
        assert s1.ops.sketch_bytes == 0

    def test_delta_incompatible_with_encryption(self):
        with pytest.raises(ConfigError):
            aa_dedupe_config(delta_compress=True, encrypt_chunks=True)

    def test_golden_accounting_unchanged_without_delta(self):
        # Delta off by default: the flag must not exist-cost anything.
        assert aa_dedupe_config().delta_compress is False


# ----------------------------------------------------------------------
def _store_chain(cloud, depth: int, rng) -> tuple:
    """Hand-build a delta chain of exactly ``depth`` hops as standalone
    objects and a manifest for its target; returns (target_bytes, ref)."""
    sha1 = get_hash("sha1")
    version = rng.integers(0, 256, 12_000, dtype=np.uint8).tobytes()
    fp = sha1.hash(version)
    cloud.put(naming.chunk_key(fp), version)
    ref = ChunkRef(fingerprint=fp, length=len(version),
                   object_key=naming.chunk_key(fp))
    for i in range(depth):
        nxt = _edit(version, 300 + i)
        blob = encode_delta(version, nxt)
        digest = sha1.hash(blob)
        cloud.put(naming.delta_key(digest), blob)
        ref = ChunkRef(fingerprint=sha1.hash(nxt), length=len(nxt),
                       object_key=naming.delta_key(digest),
                       stored_length=len(blob), delta_base=ref)
        version = nxt
    manifest = Manifest(0, "test", created=1.0)
    manifest.add(FileEntry(path="chain.doc", size=len(version),
                           mtime_ns=0, app="doc", category="uncompressed",
                           refs=[ref]))
    cloud.put(naming.manifest_key(0),
              manifest.to_json().encode("utf-8"))
    return version, ref


class TestDeltaChains:
    def test_restore_at_exactly_max_depth(self, rng):
        cloud = InMemoryBackend()
        want, ref = _store_chain(cloud, depth=4, rng=rng)
        assert ref.chain_depth() == 4
        out, report = RestoreClient(
            cloud, max_delta_depth=4).restore_to_memory(0)
        assert out["chain.doc"] == want
        assert report.deltas_applied == 4

    def test_restore_beyond_max_depth_refused(self, rng):
        cloud = InMemoryBackend()
        _store_chain(cloud, depth=4, rng=rng)
        with pytest.raises(RestoreError):
            RestoreClient(cloud,
                          max_delta_depth=3).restore_to_memory(0)

    def test_scrub_flags_overlong_chain(self, rng):
        cloud = InMemoryBackend()
        _store_chain(cloud, depth=4, rng=rng)
        report = scrub_cloud(cloud, max_delta_depth=3)
        assert not report.clean
        assert any("chain deeper" in p for p in report.problems)


class TestDeltaGCAndScrub:
    def test_gc_keeps_base_referenced_only_by_delta(self, rng):
        """Regression: a delta base referenced *only through delta
        chains* of retained manifests must never be swept."""
        v0 = rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes()
        v1 = _edit(v0, 77)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config(use_containers=False))
        client.backup(MemorySource({"a.txt": v0}))
        s1 = client.backup(MemorySource({"a.txt": v1}))
        client.close()
        assert s1.chunks_delta > 0
        # Session 0 (the only direct reference to the bases) is dropped.
        report = collect_garbage(cloud, retain_sessions=[1])
        assert not report.problems
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out["a.txt"] == v1
        assert scrub_cloud(cloud).clean
        # Control: retaining nothing sweeps bases and deltas alike.
        collect_garbage(cloud, retain_sessions=[])
        assert cloud.list(naming.CHUNK_PREFIX) == []
        assert cloud.list(naming.DELTA_PREFIX) == []

    def test_gc_container_mode_keeps_base_container(self, rng):
        v0 = rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes()
        v1 = _edit(v0, 78)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config())
        client.backup(MemorySource({"a.doc": v0}))
        client.backup(MemorySource({"a.doc": v1}))
        client.close()
        manifest = Manifest.from_json(cloud.get(naming.manifest_key(1)))
        base_cids = {ref.delta_base.container_id
                     for ref in manifest.iter_refs() if ref.is_delta}
        assert base_cids
        collect_garbage(cloud, retain_sessions=[1])
        for cid in base_cids:
            assert cloud.exists(naming.container_key(cid))
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out["a.doc"] == v1

    def test_gc_refuses_sweep_on_unreadable_manifest(self, rng):
        v0 = rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes()
        cloud = InMemoryBackend()
        client = BackupClient(cloud, _delta_config())
        client.backup(MemorySource({"a.doc": v0}))
        client.backup(MemorySource({"a.doc": _edit(v0, 9)}))
        client.close()
        containers = len(cloud.list(naming.CONTAINER_PREFIX))
        cloud.put(naming.manifest_key(1), b"{corrupt json")
        report = collect_garbage(cloud, retain_sessions=[0, 1])
        assert report.problems
        assert report.deleted_manifests == 0
        assert len(cloud.list(naming.CONTAINER_PREFIX)) == containers

    def test_scrub_flags_dangling_base(self, rng):
        cloud = InMemoryBackend()
        _store_chain(cloud, depth=1, rng=rng)
        # Delete the full base object the delta rebuilds against.
        base_key = cloud.list(naming.CHUNK_PREFIX)[0]
        cloud.delete(base_key)
        report = scrub_cloud(cloud)
        assert not report.clean
        assert any("delta base" in p for p in report.problems)

    def test_scrub_flags_corrupt_delta_blob(self, rng):
        cloud = InMemoryBackend()
        _store_chain(cloud, depth=1, rng=rng)
        key = cloud.list(naming.DELTA_PREFIX)[0]
        cloud.put(key, b"\x00" * 40)
        report = scrub_cloud(cloud)
        assert not report.clean


# ----------------------------------------------------------------------
class TestHashForDigestLen:
    def test_registry_resolution(self):
        assert hash_for_digest_len(12).name == "rabin12"
        assert hash_for_digest_len(16).name == "md5"
        assert hash_for_digest_len(20).name == "sha1"
        assert hash_for_digest_len(57) is None

    def test_matches_restore_and_scrub_usage(self):
        for n in (12, 16, 20):
            hasher = hash_for_digest_len(n)
            assert hasher.digest_size == n
