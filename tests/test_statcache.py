"""Tests for the cross-session stat cache (repro.core.filecache) and its
wiring into the backup engine: replay semantics, safety rules (size+mtime
triple, GC-epoch invalidation, stale-ref fallback), persistence across
process restarts, and parity with cache-off runs."""

import dataclasses

import numpy as np
import pytest

from repro.cloud import InMemoryBackend, SimulatedCloud
from repro.core import (
    BackupClient,
    FileCache,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
    collect_garbage,
    invalidate_statcache,
)
from repro.core import naming
from repro.core.filecache import read_epoch
from repro.core.recipe import ChunkRef, FileEntry
from repro.core.scrub import scrub_cloud
from repro.simulate.clock import VirtualClock
from repro.util.units import KIB


def small_config(**overrides):
    base = dict(container_size=64 * KIB)
    base.update(overrides)
    return aa_dedupe_config(**base)


@pytest.fixture()
def dataset(rng):
    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    files = {
        "music/song.mp3": blob(50_000),
        "docs/report.doc": blob(60_000),
        "vm/image.vmdk": blob(100_000),
        "misc/readme.txt": blob(12_000),
        "misc/tiny.txt": blob(512),
    }
    mtimes = {path: 1_000 + i for i, path in enumerate(sorted(files))}
    return files, mtimes


class TestStatCacheReplay:
    def test_unchanged_session_replays_without_reading(self, dataset):
        files, mtimes = dataset
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(files, mtimes))
        s2 = client.backup(MemorySource(files, mtimes))
        # Every file replayed from cache: no reads, no chunking, no
        # hashing — but the dedup accounting still sees the bytes.
        assert s2.files_unchanged == len(files)
        assert s2.ops.read_bytes == 0
        assert s2.ops.cdc_scanned_bytes == 0
        assert sum(s2.ops.hashed_bytes.values()) == 0
        assert s2.bytes_scanned == sum(len(v) for v in files.values())
        assert s2.bytes_unique == 0
        restored, report = RestoreClient(cloud).restore_to_memory(1)
        assert restored == files
        assert not report.corrupt

    def test_changed_file_takes_full_pipeline(self, dataset):
        files, mtimes = dataset
        client = BackupClient(InMemoryBackend(), small_config())
        client.backup(MemorySource(files, mtimes))
        files2 = dict(files)
        files2["docs/report.doc"] = files["docs/report.doc"] + b"more"
        mtimes2 = dict(mtimes)
        mtimes2["docs/report.doc"] = 9_999
        s2 = client.backup(MemorySource(files2, mtimes2))
        assert s2.files_unchanged == len(files) - 1
        assert s2.ops.read_bytes == len(files2["docs/report.doc"])

    def test_mtime_less_source_never_replays(self, dataset):
        # mtime_ns == 0 is the "unknown" sentinel: sources without
        # stamps must always take the full pipeline.
        files, _ = dataset
        client = BackupClient(InMemoryBackend(), small_config())
        client.backup(MemorySource(files))
        s2 = client.backup(MemorySource(files))
        assert s2.files_unchanged == 0
        assert s2.ops.read_bytes == sum(len(v) for v in files.values())
        assert len(client._filecache) == 0

    def test_triple_requires_both_size_and_mtime(self):
        # An mtime rollback with a content change must never replay
        # wrong bytes: the triple matches only when size AND mtime both
        # match the cached entry.
        a = bytes(range(256)) * 100          # 25600 B
        b = bytes(reversed(range(256))) * 100  # same size, new content
        c = a + b"tail"                       # new size
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource({"f.doc": a}, {"f.doc": 5}))
        # Same size, different mtime: miss, full pipeline.
        s2 = client.backup(MemorySource({"f.doc": b}, {"f.doc": 7}))
        assert s2.files_unchanged == 0 and s2.ops.read_bytes == len(b)
        # mtime rolled back to a cached stamp, different size: miss.
        s3 = client.backup(MemorySource({"f.doc": c}, {"f.doc": 5}))
        assert s3.files_unchanged == 0 and s3.ops.read_bytes == len(c)
        for sid, want in enumerate([a, b, c]):
            restored, _ = RestoreClient(cloud).restore_to_memory(sid)
            assert restored == {"f.doc": want}

    def test_gc_sweep_invalidates_cache(self, dataset, rng):
        files, mtimes = dataset
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        extra_files = dict(files)
        # Big enough to fill whole containers of its own, so dropping it
        # actually deletes data (a dead container) rather than leaving
        # partially-live containers behind.
        extra_files["docs/old.doc"] = rng.integers(
            0, 256, size=300_000, dtype=np.uint8).tobytes()
        extra_mtimes = dict(mtimes, **{"docs/old.doc": 77})
        client.backup(MemorySource(extra_files, extra_mtimes))
        client.backup(MemorySource(files, mtimes))     # old.doc vanishes
        assert cloud.list(naming.STATCACHE_PREFIX)
        report = collect_garbage(cloud, retain_sessions=[1])
        # old.doc's extents died, so the sweep must bump the epoch and
        # drop every persisted blob.
        assert report.statcache_invalidated
        assert [k for k in cloud.list(naming.STATCACHE_PREFIX)
                if k != naming.STATCACHE_EPOCH_KEY] == []
        # The resident cache is now a different epoch: session 2 must
        # re-chunk everything instead of replaying possibly-dead refs.
        s3 = client.backup(MemorySource(files, mtimes))
        assert s3.files_unchanged == 0
        assert s3.ops.read_bytes == sum(len(v) for v in files.values())
        # ... and the rebuilt cache replays again one session later.
        s4 = client.backup(MemorySource(files, mtimes))
        assert s4.files_unchanged == len(files)
        restored, _ = RestoreClient(cloud).restore_to_memory(3)
        assert restored == files

    def test_stale_cached_ref_falls_back(self, dataset):
        # A cached recipe whose ref no longer resolves in the index must
        # be discarded, counted, and the file re-processed — never
        # replayed blind.
        files, mtimes = dataset
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config())
        client.backup(MemorySource(files, mtimes))
        cache = client._filecache
        entry = cache._apps["doc"]["docs/report.doc"]
        bogus = [dataclasses.replace(r, fingerprint=b"\x00" * len(
            r.fingerprint)) for r in entry.refs]
        cache._apps["doc"]["docs/report.doc"] = dataclasses.replace(
            entry, refs=bogus)
        s2 = client.backup(MemorySource(files, mtimes))
        assert s2.statcache_stale == 1
        assert s2.files_unchanged == len(files) - 1
        assert s2.ops.read_bytes == len(files["docs/report.doc"])
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == files

    def test_cold_cache_manifest_parity(self, dataset):
        # With a cold cache the engine must behave byte-identically to
        # stat_cache=False — same manifest, same uploads.
        files, mtimes = dataset

        def manifest_bytes(stat_cache):
            cloud = SimulatedCloud(InMemoryBackend(), clock=VirtualClock())
            client = BackupClient(
                cloud, small_config(stat_cache=stat_cache))
            client.backup(MemorySource(files, mtimes))
            client.close()
            return cloud.get(naming.manifest_key(0))

        assert manifest_bytes(True) == manifest_bytes(False)

    def test_delta_chain_refs_replay(self, rng):
        # Cached entries whose refs are delta extents (with nested base
        # chains) must replay and restore bit-exact.
        base = rng.integers(0, 256, size=48_000, dtype=np.uint8).tobytes()
        edited = bytearray(base)
        edited[1000:1016] = rng.integers(0, 256, 16,
                                         dtype=np.uint8).tobytes()
        files = {"a.doc": base, "b.doc": bytes(edited)}
        mtimes = {"a.doc": 11, "b.doc": 12}
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config(
            delta_compress=True, pad_containers=False))
        s1 = client.backup(MemorySource(files, mtimes))
        assert s1.chunks_delta > 0  # b.doc's changed chunk stored as delta
        s2 = client.backup(MemorySource(files, mtimes))
        assert s2.files_unchanged == 2
        assert s2.ops.read_bytes == 0
        manifest = client.manifests[1]
        assert any(r.is_delta for r in manifest.get("b.doc").refs)
        client.close()
        restored, report = RestoreClient(cloud).restore_to_memory(1)
        assert restored == files
        assert report.deltas_applied > 0
        scrub = scrub_cloud(cloud)
        assert scrub.clean, scrub.problems

    def test_persisted_cache_survives_restart(self, dataset):
        files, mtimes = dataset
        cloud = InMemoryBackend()
        first = BackupClient(cloud, small_config())
        first.backup(MemorySource(files, mtimes))
        first.close()
        # A brand-new process: state rebuilt from cloud replicas only.
        second = BackupClient(cloud, small_config())
        second.resume_from_cloud()
        s2 = second.backup(MemorySource(files, mtimes))
        assert s2.session_id == 1
        assert s2.files_unchanged == len(files)
        assert s2.ops.read_bytes == 0
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == files

    def test_stat_cache_off_writes_no_blobs(self, dataset):
        files, mtimes = dataset
        cloud = InMemoryBackend()
        client = BackupClient(cloud, small_config(stat_cache=False))
        client.backup(MemorySource(files, mtimes))
        s2 = client.backup(MemorySource(files, mtimes))
        assert s2.files_unchanged == 0
        assert cloud.list(naming.STATCACHE_PREFIX) == []

    def test_parallel_warm_session_matches_serial(self, dataset):
        files, mtimes = dataset

        def warm_manifest(workers):
            cloud = SimulatedCloud(InMemoryBackend(), clock=VirtualClock())
            client = BackupClient(cloud, small_config(
                parallel_workers=workers))
            client.backup(MemorySource(files, mtimes))
            stats = client.backup(MemorySource(files, mtimes))
            client.close()
            return cloud.get(naming.manifest_key(1)), stats

        serial_bytes, _ = warm_manifest(1)
        parallel_bytes, stats = warm_manifest(3)
        assert stats.files_unchanged == len(files)
        assert stats.ops.read_bytes == 0
        assert parallel_bytes == serial_bytes


class TestFileCacheUnit:
    def entry(self, path="a.txt", size=100, mtime=5, app="txt", **kw):
        ref = ChunkRef(fingerprint=b"\x11" * 20, length=size,
                       container_id=3, offset=0)
        return FileEntry(path=path, size=size, mtime_ns=mtime, app=app,
                         category="dynamic", refs=[ref], **kw)

    def committed(self, *entries):
        cache = FileCache("AA-Dedupe")
        cache.begin_session()
        for e in entries:
            cache.record(e)
        cache.commit()
        return cache

    def test_match_requires_exact_triple(self):
        cache = self.committed(self.entry())
        assert cache.match("txt", "a.txt", 100, 5) is not None
        assert cache.match("txt", "a.txt", 101, 5) is None
        assert cache.match("txt", "a.txt", 100, 6) is None
        assert cache.match("txt", "b.txt", 100, 5) is None
        assert cache.match("doc", "a.txt", 100, 5) is None

    def test_zero_mtime_never_matches_or_records(self):
        cache = self.committed(self.entry(mtime=0))
        assert len(cache) == 0
        cache2 = self.committed(self.entry(mtime=5))
        assert cache2.match("txt", "a.txt", 100, 0) is None

    def test_commit_reports_dirty_apps_only(self):
        cache = self.committed(self.entry())
        cache.begin_session()
        cache.record(self.entry())          # identical generation
        assert cache.commit() == []
        cache.begin_session()
        cache.record(self.entry(mtime=9))   # changed
        assert cache.commit() == ["txt"]

    def test_vanished_app_is_dirty(self):
        cache = self.committed(self.entry())
        cache.begin_session()
        assert cache.commit() == ["txt"]    # blob must be rewritten empty
        assert len(cache) == 0

    def test_uncommitted_session_never_served(self):
        cache = FileCache("AA-Dedupe")
        cache.begin_session()
        cache.record(self.entry())
        # Crash before commit: the staged generation must not leak.
        cache.begin_session()
        assert cache.commit() == []
        assert cache.match("txt", "a.txt", 100, 5) is None

    def test_blob_roundtrip(self):
        cache = self.committed(self.entry(), self.entry(path="b.txt"))
        blob = cache.blob_for("txt")
        other = FileCache("AA-Dedupe")
        assert other.load_blob(blob) == 2
        assert other.match("txt", "b.txt", 100, 5) is not None

    def test_blob_rejected_on_mismatch(self):
        cache = self.committed(self.entry())
        blob = cache.blob_for("txt")
        assert FileCache("SAM").load_blob(blob) == 0       # scheme
        stale = FileCache("AA-Dedupe")
        stale.epoch = 3
        assert stale.load_blob(blob) == 0                  # epoch
        with pytest.raises((ValueError, KeyError)):
            FileCache("AA-Dedupe").load_blob(b"not json")  # corrupt

    def test_epoch_helpers(self):
        cloud = InMemoryBackend()
        assert read_epoch(cloud) == 0
        cloud.put(naming.statcache_key("txt"), b"{}")
        assert invalidate_statcache(cloud) == 1
        assert read_epoch(cloud) == 1
        assert invalidate_statcache(cloud) == 0
        assert read_epoch(cloud) == 2
        cloud.put(naming.STATCACHE_EPOCH_KEY, b"garbage")
        assert read_epoch(cloud) == 0
