"""Tests for the durability subsystem: policy, placement, replication,
scrub findings, repair, restore failover and GC interaction."""

import numpy as np
import pytest

from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, RestoreClient, \
    aa_dedupe_config, collect_garbage
from repro.core import naming
from repro.core.scrub import scrub_cloud
from repro.durability import (
    ContainerCriticality,
    DurabilityPolicy,
    ReplicationPlan,
    collect_criticality,
    default_domains,
    kill_domain,
    primary_domain,
    repair_cloud,
    replica_domains,
    replica_keys,
    replicate_cloud,
)
from repro.errors import ConfigError, ObjectNotFound

#: Replicate everything twice — deterministic targets for the tests
#: that care about damage/repair rather than tiering.
R2 = DurabilityPolicy(base_replicas=2)
DOMAINS = ("d0", "d1", "d2")


def make_files(rng, salt=0):
    return {
        "m/a.mp3": rng.integers(0, 256, 30_000,
                                dtype=np.uint8).tobytes() + bytes([salt]),
        "d/r.doc": rng.integers(0, 256, 25_000,
                                dtype=np.uint8).tobytes() + bytes([salt]),
        "t/t.txt": b"small note %d" % salt,
    }


@pytest.fixture()
def store(rng):
    files = make_files(rng)
    cloud = InMemoryBackend()
    client = BackupClient(cloud, aa_dedupe_config(container_size=32 * 1024))
    client.backup(MemorySource(files))
    client.close()
    return cloud, files


@pytest.fixture()
def replicated(store):
    cloud, files = store
    report = replicate_cloud(cloud, policy=R2, domains=DOMAINS)
    assert report.replicas_written >= 1
    return cloud, files, report


class TestPlacement:
    def test_default_domains(self):
        assert default_domains() == ("d0", "d1", "d2")
        assert default_domains(5) == ("d0", "d1", "d2", "d3", "d4")

    def test_primary_assignment_deterministic(self):
        assert primary_domain(0, DOMAINS) == "d0"
        assert primary_domain(4, DOMAINS) == "d1"
        assert primary_domain(4, DOMAINS) == primary_domain(4, DOMAINS)

    def test_replicas_avoid_primary_domain(self):
        for cid in range(10):
            home = primary_domain(cid, DOMAINS)
            others = replica_domains(cid, DOMAINS, replicas=3)
            assert home not in others
            assert len(others) == len(set(others)) == 2

    def test_replica_keys_shape(self):
        keys = replica_keys(7, DOMAINS, replicas=2)
        assert len(keys) == 1
        domain, cid = naming.parse_replica_key(keys[0])
        assert cid == 7 and domain in DOMAINS

    def test_replicas_capped_by_domains(self):
        assert list(replica_domains(1, ("only",), replicas=3)) == []

    def test_empty_domains_rejected(self):
        with pytest.raises(ConfigError):
            primary_domain(0, ())

    def test_parse_replica_key_malformed(self):
        assert naming.parse_replica_key("replicas/") is None
        assert naming.parse_replica_key("replicas/d0/chunks/ab") is None
        assert naming.parse_replica_key("replicas/d0/containers/xx") is None
        assert naming.parse_replica_key("containers/0000000001") is None


class TestPolicy:
    def crit(self, **kw):
        base = dict(container_id=1, refcount=1,
                    manifests={"manifests/session-000000.json"},
                    categories={"compressed"})
        base.update(kw)
        c = ContainerCriticality(base["container_id"], base["refcount"])
        c.manifests = set(base["manifests"])
        c.categories = set(base["categories"])
        return c

    def test_quiet_container_stays_single(self):
        assert DurabilityPolicy().target_replicas(self.crit(), DOMAINS) == 1

    def test_one_signal_adds_a_copy(self):
        p = DurabilityPolicy()
        assert p.target_replicas(self.crit(refcount=8), DOMAINS) == 2
        assert p.target_replicas(
            self.crit(manifests={"m1", "m2"}), DOMAINS) == 2
        assert p.target_replicas(
            self.crit(categories={"dynamic_uncompressed"}), DOMAINS) == 2

    def test_all_signals_add_two_copies(self):
        hot = self.crit(refcount=100, manifests={"m1", "m2", "m3"},
                        categories={"dynamic_uncompressed"})
        assert DurabilityPolicy().target_replicas(hot, DOMAINS) == 3

    def test_clamped_by_domain_count(self):
        hot = self.crit(refcount=100, manifests={"m1", "m2"},
                        categories={"dynamic_uncompressed"})
        assert DurabilityPolicy().target_replicas(hot, ("d0",)) == 1
        assert DurabilityPolicy().target_replicas(hot, ("d0", "d1")) == 2

    def test_clamped_by_max_replicas(self):
        hot = self.crit(refcount=100, manifests={"m1", "m2"},
                        categories={"dynamic_uncompressed"})
        p = DurabilityPolicy(max_replicas=2)
        assert p.target_replicas(hot, DOMAINS) == 2


class TestReplicationPlan:
    def test_round_trip(self):
        plan = ReplicationPlan(domains=DOMAINS, targets={3: 2, 9: 3})
        again = ReplicationPlan.from_json(plan.to_json())
        assert again.domains == DOMAINS
        assert again.targets == {3: 2, 9: 3}

    def test_single_copy_entries_not_recorded(self):
        plan = ReplicationPlan(domains=DOMAINS, targets={1: 1, 2: 2})
        assert 1 not in plan and 2 in plan
        assert plan.target(1) == 1 and plan.target(2) == 2
        assert plan.replica_keys(1) == []

    def test_save_load_and_empty_save_deletes(self):
        cloud = InMemoryBackend()
        plan = ReplicationPlan(domains=DOMAINS, targets={5: 2})
        plan.save(cloud)
        assert ReplicationPlan.load(cloud).targets == {5: 2}
        plan.prune(live_containers=set())
        plan.save(cloud)
        assert not cloud.exists(naming.DURABILITY_PLAN_KEY)
        assert ReplicationPlan.load(cloud) is None

    def test_unreadable_plan_treated_as_absent(self):
        cloud = InMemoryBackend()
        cloud.put(naming.DURABILITY_PLAN_KEY, b"not json at all")
        assert ReplicationPlan.load(cloud) is None

    def test_prune_reports_removals(self):
        plan = ReplicationPlan(domains=DOMAINS, targets={1: 2, 2: 2, 3: 2})
        assert plan.prune({2}) == 2
        assert plan.targets == {2: 2}


class TestCriticality:
    def test_fan_in_counts_sessions(self, rng):
        cloud = InMemoryBackend()
        client = BackupClient(cloud,
                              aa_dedupe_config(container_size=32 * 1024))
        files = make_files(rng)
        client.backup(MemorySource(files))
        client.backup(MemorySource(files))  # same data, second manifest
        client.close()
        crit = collect_criticality(cloud)
        assert crit, "expected at least one referenced container"
        # Deduped containers are referenced by both manifests; the
        # per-session tiny-file containers stay at fan-in 1.
        shared = [c for c in crit.values() if c.fan_in == 2]
        assert shared
        assert all(c.refcount >= 2 for c in shared)
        categories = set().union(*(c.categories for c in crit.values()))
        assert "dynamic_uncompressed" in categories


class TestReplicate:
    def test_writes_replicas_and_plan(self, replicated):
        cloud, _files, report = replicated
        plan = ReplicationPlan.load(cloud)
        assert plan is not None and plan.targets == report.targets
        for cid, target in plan.targets.items():
            # base_replicas=2, plus criticality signals on hot/doc
            # containers.
            assert target >= 2
            assert len(plan.replica_keys(cid)) == target - 1
            for key in plan.replica_keys(cid):
                assert cloud.exists(key)
                assert naming.parse_replica_key(key)[1] == cid

    def test_second_pass_is_idempotent(self, replicated):
        cloud, _files, first = replicated
        second = replicate_cloud(cloud, policy=R2, domains=DOMAINS)
        assert second.replicas_written == 0
        assert second.replicas_existing == first.replicas_written

    def test_domains_stick_across_passes(self, replicated):
        cloud, _files, _report = replicated
        # No explicit domains: the pass must reuse the plan's.
        again = replicate_cloud(cloud, policy=R2)
        assert again.replicas_written == 0
        assert ReplicationPlan.load(cloud).domains == DOMAINS

    def test_default_policy_replicates_only_critical(self, store):
        cloud, _files = store
        report = replicate_cloud(cloud, domains=DOMAINS)
        # One session, low refcounts: only containers holding
        # dynamic-uncompressed (doc) data tier up.
        assert 0 < report.containers_replicated \
            < report.containers_considered


class TestScrubDurability:
    def test_fully_replicated_store_is_clean(self, replicated):
        cloud, _files, _report = replicated
        report = scrub_cloud(cloud)
        assert report.clean
        assert report.replicas_checked >= 1

    def test_missing_replica_is_repairable_finding(self, replicated):
        cloud, _files, _rep = replicated
        victim = cloud.list(naming.REPLICA_PREFIX)[0]
        cloud.delete(victim)
        report = scrub_cloud(cloud)
        assert not report.clean
        assert not report.problems  # data intact, durability degraded
        kinds = {f.kind for f in report.findings}
        assert kinds == {"missing_replica", "under_replicated"}
        assert all(f.repairable for f in report.findings)
        assert "repairable" in report.summary_line()

    def test_lost_primary_recovered_through_replica(self, replicated):
        cloud, _files, _rep = replicated
        victim = cloud.list(naming.CONTAINER_PREFIX)[0]
        cloud.delete(victim)
        report = scrub_cloud(cloud)
        assert not report.clean
        assert not report.problems  # refs resolve via the replica
        kinds = {f.kind for f in report.findings}
        assert "missing_primary" in kinds
        assert "container_lost" not in kinds

    def test_corrupt_replica_detected(self, replicated):
        cloud, _files, _rep = replicated
        victim = cloud.list(naming.REPLICA_PREFIX)[0]
        blob = bytearray(cloud.get(victim))
        blob[50] ^= 0xFF
        cloud._objects[victim] = bytes(blob)
        report = scrub_cloud(cloud)
        assert any(f.kind == "corrupt_replica" for f in report.findings)

    def test_all_copies_lost_is_a_problem(self, replicated):
        cloud, _files, _rep = replicated
        plan = ReplicationPlan.load(cloud)
        cid = sorted(plan.targets)[0]
        cloud.delete(naming.container_key(cid))
        for key in plan.replica_keys(cid):
            cloud.delete(key)
        report = scrub_cloud(cloud)
        assert any(f.kind == "container_lost" and not f.repairable
                   for f in report.findings)
        assert report.problems

    def test_orphan_replica_flagged(self, store):
        cloud, _files = store
        cloud.put(naming.replica_key("d9", 12345), b"whatever")
        report = scrub_cloud(cloud)
        assert any(f.kind == "orphan_replica" for f in report.findings)


class TestRepair:
    def test_promotes_replica_after_primary_loss(self, replicated):
        cloud, files, _rep = replicated
        victim = cloud.list(naming.CONTAINER_PREFIX)[0]
        cloud.delete(victim)
        report = repair_cloud(cloud)
        assert report.ok and report.primaries_restored == 1
        assert cloud.exists(victim)
        assert scrub_cloud(cloud).clean
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files

    def test_rebuilds_missing_replica(self, replicated):
        cloud, _files, _rep = replicated
        victim = cloud.list(naming.REPLICA_PREFIX)[0]
        cloud.delete(victim)
        report = repair_cloud(cloud)
        assert report.ok and report.replicas_restored == 1
        assert report.bytes_copied > 0
        assert cloud.exists(victim)
        assert scrub_cloud(cloud).clean

    def test_replaces_corrupt_copy(self, replicated):
        cloud, _files, _rep = replicated
        victim = cloud.list(naming.REPLICA_PREFIX)[0]
        cloud._objects[victim] = b"garbage"
        assert repair_cloud(cloud).replicas_restored == 1
        assert scrub_cloud(cloud).clean

    def test_unrepairable_when_no_copy_survives(self, replicated):
        cloud, _files, _rep = replicated
        plan = ReplicationPlan.load(cloud)
        cid = sorted(plan.targets)[0]
        cloud.delete(naming.container_key(cid))
        for key in plan.replica_keys(cid):
            cloud.delete(key)
        report = repair_cloud(cloud)
        assert not report.ok
        assert any(str(cid) in msg for msg in report.unrepairable)

    def test_noop_without_plan(self, store):
        cloud, _files = store
        report = repair_cloud(cloud)
        assert report.ok and report.containers_checked == 0


class TestDomainKill:
    def test_kill_domain_then_repair_converges(self, replicated):
        cloud, files, _rep = replicated
        deleted = kill_domain(cloud, "d0", DOMAINS)
        assert deleted >= 1
        assert repair_cloud(cloud).ok
        assert scrub_cloud(cloud).clean
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files


class TestRestoreFailover:
    def test_restore_fails_over_to_replica(self, replicated):
        cloud, files, _rep = replicated
        for key in cloud.list(naming.CONTAINER_PREFIX):
            cloud.delete(key)
        client = RestoreClient(cloud)
        restored, report = client.restore_to_memory(0)
        assert restored == files
        assert report.failovers >= 1

    def test_missing_primary_without_plan_still_raises(self, store):
        cloud, _files = store
        for key in cloud.list(naming.CONTAINER_PREFIX):
            cloud.delete(key)
        with pytest.raises(ObjectNotFound):
            RestoreClient(cloud).restore_to_memory(0)


class TestRestoreCorruptionRetry:
    """Transport bit flips (ChaosBackend.corrupt_rate) must be retried
    once; corruption that persists across the retry surfaces."""

    def test_container_corruption_retried(self, store):
        from repro.cloud.faults import ChaosBackend
        cloud, files = store
        # seed chosen so at least one container get is flipped but no
        # fetch is flipped twice in a row
        chaos = ChaosBackend(cloud, seed=29, corrupt_rate=0.5)
        restored, report = RestoreClient(chaos).restore_to_memory(0)
        assert restored == files
        assert report.fetch_retries >= 1
        assert chaos.chaos.corruptions >= 1

    def test_standalone_object_corruption_retried(self, rng):
        from repro.baselines import avamar_config
        from repro.cloud.faults import ChaosBackend
        files = make_files(rng)
        cloud = InMemoryBackend()
        client = BackupClient(cloud, avamar_config())
        client.backup(MemorySource(files))
        client.close()
        chaos = ChaosBackend(cloud, seed=0, corrupt_rate=0.3)
        restored, report = RestoreClient(chaos).restore_to_memory(0)
        assert restored == files
        assert report.fetch_retries >= 1
        assert report.objects_fetched > 0

    def test_at_rest_corruption_still_surfaces(self, store):
        from repro.errors import IntegrityError
        cloud, _files = store
        victim = cloud.list(naming.CONTAINER_PREFIX)[0]
        blob = bytearray(cloud.get(victim))
        blob[200] ^= 0x01
        cloud._objects[victim] = bytes(blob)
        with pytest.raises(IntegrityError):
            RestoreClient(cloud).restore_to_memory(0)


class TestGCDurability:
    def test_replicas_swept_with_dead_containers(self, rng):
        cloud = InMemoryBackend()
        client = BackupClient(cloud,
                              aa_dedupe_config(container_size=32 * 1024))
        client.backup(MemorySource(make_files(rng, salt=1)))
        client.backup(MemorySource(make_files(rng, salt=2)))
        client.close()
        replicate_cloud(cloud, policy=R2, domains=DOMAINS)

        report = collect_garbage(cloud, retain_sessions=[1])
        assert report.deleted_containers >= 1
        assert report.deleted_replicas >= 1
        assert report.plan_pruned >= 1
        # No orphans: every surviving replica belongs to a live
        # container and the store scrubs clean.
        plan = ReplicationPlan.load(cloud)
        for key in cloud.list(naming.REPLICA_PREFIX):
            _domain, cid = naming.parse_replica_key(key)
            assert cloud.exists(naming.container_key(cid))
            assert plan is not None and cid in plan
        assert scrub_cloud(cloud).clean

    def test_last_survivor_of_live_container_kept(self, replicated):
        cloud, files, _rep = replicated
        victim = cloud.list(naming.CONTAINER_PREFIX)[0]
        cloud.delete(victim)  # replicas are now the only copies
        report = collect_garbage(cloud, retain_sessions=[0])
        assert report.deleted_replicas == 0
        restored, restore_report = RestoreClient(cloud).restore_to_memory(0)
        assert restored == files
        assert restore_report.failovers >= 1

    def test_tenant_manifest_pins_shared_container(self, rng):
        from repro.cloud import NamespacedBackend
        raw = InMemoryBackend()
        view = NamespacedBackend(raw, "t0")
        client = BackupClient(view,
                              aa_dedupe_config(container_size=32 * 1024))
        client.backup(MemorySource(make_files(rng)))
        client.close()
        assert raw.list(naming.CONTAINER_PREFIX)
        # Root GC with nothing retained must not touch data a tenant
        # still references.
        report = collect_garbage(raw, retain_sessions=[])
        assert report.deleted_containers == 0
        assert report.tenant_manifests_marked == 1
        assert raw.list(naming.CONTAINER_PREFIX)
