"""Tests for restore verification, directory restore, GC and index sync."""

import numpy as np
import pytest

from repro.cloud import InMemoryBackend, LocalDirectoryBackend
from repro.core import (
    BackupClient,
    DirectorySource,
    IndexSynchronizer,
    MemorySource,
    RestoreClient,
    aa_dedupe_config,
    collect_garbage,
    restore_session,
)
from repro.core import naming
from repro.errors import IntegrityError, ObjectNotFound, RestoreError
from repro.index.appaware import AppAwareIndex
from repro.util.units import KIB


@pytest.fixture()
def backed_up(rng):
    def blob(n):
        return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()

    files = {
        "a/song.mp3": blob(40_000),
        "b/doc.doc": blob(30_000),
        "b/tiny.txt": blob(100),
        "c/vm.vmdk": blob(50_000),
    }
    cloud = InMemoryBackend()
    client = BackupClient(cloud, aa_dedupe_config(container_size=32 * KIB))
    client.backup(MemorySource(files))
    files2 = dict(files)
    files2["b/doc.doc"] = files["b/doc.doc"] + blob(4_000)
    client.backup(MemorySource(files2))
    return cloud, client, files, files2


class TestRestore:
    def test_selective_restore(self, backed_up):
        cloud, _c, files, _f2 = backed_up
        out, report = RestoreClient(cloud).restore_to_memory(
            0, paths=["b/doc.doc"])
        assert out == {"b/doc.doc": files["b/doc.doc"]}
        assert report.files_restored == 1

    def test_selective_restore_missing_path(self, backed_up):
        cloud = backed_up[0]
        with pytest.raises(RestoreError):
            RestoreClient(cloud).restore_to_memory(0, paths=["ghost.txt"])

    def test_restore_to_directory(self, backed_up, tmp_path):
        cloud, _c, files, _ = backed_up
        report = restore_session(cloud, 0, tmp_path / "out")
        assert report.files_restored == len(files)
        for path, data in files.items():
            assert (tmp_path / "out" / path).read_bytes() == data

    def test_missing_session(self, backed_up):
        with pytest.raises(ObjectNotFound):
            RestoreClient(backed_up[0]).restore_to_memory(99)

    def test_verification_detects_corruption(self, backed_up):
        cloud, client, _f, _f2 = backed_up
        # Corrupt one byte of a standalone... all data is in containers;
        # corrupt a container payload byte directly in the dict.
        key = cloud.list(naming.CONTAINER_PREFIX)[0]
        blob = bytearray(cloud._objects[key])
        blob[40] ^= 0xFF  # inside the data section
        cloud._objects[key] = bytes(blob)
        with pytest.raises(IntegrityError):
            RestoreClient(cloud).restore_to_memory(0)

    def test_verification_skippable(self, backed_up):
        cloud = backed_up[0]
        out, report = RestoreClient(cloud, verify=False).restore_to_memory(0)
        assert report.chunks_verified == 0
        assert len(out) == 4

    def test_container_cache_bounds_fetches(self, backed_up):
        cloud = backed_up[0]
        before = cloud.stats.get_requests
        rc = RestoreClient(cloud, container_cache_size=16)
        rc.restore_to_memory(1)
        fetches = cloud.stats.get_requests - before
        containers = len(cloud.list(naming.CONTAINER_PREFIX))
        # manifest + at most one fetch per container.
        assert fetches <= containers + 1

    def test_chunks_verified_counted(self, backed_up):
        cloud = backed_up[0]
        _out, report = RestoreClient(cloud).restore_to_memory(0)
        assert report.chunks_verified >= 4


class TestGarbageCollection:
    def test_dropping_old_session_keeps_new_restorable(self, backed_up):
        cloud, _c, _f, files2 = backed_up
        report = collect_garbage(cloud, retain_sessions=[1])
        assert report.deleted_manifests == 1
        out, _ = RestoreClient(cloud).restore_to_memory(1)
        assert out == files2
        with pytest.raises(ObjectNotFound):
            RestoreClient(cloud).restore_to_memory(0)

    def test_retain_all_deletes_nothing(self, backed_up):
        cloud = backed_up[0]
        containers_before = len(cloud.list(naming.CONTAINER_PREFIX))
        report = collect_garbage(cloud, retain_sessions=[0, 1])
        assert report.deleted_containers == 0
        assert report.deleted_manifests == 0
        assert len(cloud.list(naming.CONTAINER_PREFIX)) == containers_before

    def test_drop_everything(self, backed_up):
        cloud = backed_up[0]
        report = collect_garbage(cloud, retain_sessions=[])
        assert report.deleted_manifests == 2
        assert cloud.list(naming.CONTAINER_PREFIX) == []

    def test_live_bytes_reported(self, backed_up):
        cloud = backed_up[0]
        report = collect_garbage(cloud, retain_sessions=[0, 1])
        assert sum(report.container_live_bytes.values()) > 100_000

    def test_object_mode_gc(self, rng):
        # Avamar-style standalone chunk objects are swept too.
        from repro.baselines import avamar_config
        files = {"x.doc": rng.integers(0, 256, 30_000,
                                       dtype=np.uint8).tobytes()}
        cloud = InMemoryBackend()
        client = BackupClient(cloud, avamar_config())
        client.backup(MemorySource(files))
        assert cloud.list(naming.CHUNK_PREFIX)
        report = collect_garbage(cloud, retain_sessions=[])
        assert report.deleted_objects > 0
        assert cloud.list(naming.CHUNK_PREFIX) == []


class TestIndexSync:
    def test_push_pull_roundtrip(self, backed_up):
        cloud, client, _f, _f2 = backed_up
        fresh = AppAwareIndex()
        restored = IndexSynchronizer(cloud).pull(fresh)
        assert restored == len(client.index)
        assert fresh.sizes() == client.index.sizes()

    def test_push_skips_unchanged(self, backed_up):
        cloud, client, _f, _f2 = backed_up
        sync = IndexSynchronizer(cloud)
        first = sync.push(client.index)
        assert first > 0
        assert sync.push(client.index) == 0  # nothing changed

    def test_disaster_recovery_dedup_continuity(self, backed_up, rng):
        # A brand-new client that pulls the index keeps deduplicating
        # against data already in the cloud.
        cloud, old_client, files, files2 = backed_up
        new_client = BackupClient(cloud, old_client.config)
        IndexSynchronizer(cloud).pull(new_client.index)
        stats = new_client.backup(MemorySource(files2), session_id=5)
        # Only tiny repack bytes are re-uploaded; all chunks dedup.
        assert stats.bytes_unique <= 200
        out, _ = RestoreClient(cloud).restore_to_memory(5)
        assert out == files2


class TestDirectorySourceEndToEnd:
    def test_real_directory_to_real_store(self, tmp_path, rng):
        src = tmp_path / "data"
        (src / "docs").mkdir(parents=True)
        payload = rng.integers(0, 256, 25_000, dtype=np.uint8).tobytes()
        (src / "docs" / "f.doc").write_bytes(payload)
        (src / "note.txt").write_bytes(b"hello world")
        store = LocalDirectoryBackend(tmp_path / "cloud")
        client = BackupClient(store, aa_dedupe_config(
            container_size=32 * KIB))
        stats = client.backup(DirectorySource(src))
        assert stats.files_total == 2
        out_dir = tmp_path / "restored"
        restore_session(store, 0, out_dir)
        assert (out_dir / "docs" / "f.doc").read_bytes() == payload
        assert (out_dir / "note.txt").read_bytes() == b"hello world"
        assert DirectorySource(src).total_bytes() == 25_000 + 11
