"""Focused tests for corners not covered by the module suites."""

import pytest

from repro.analysis.figures import paper_figures_7_to_11
from repro.chunking.cdc import default_mask_bits
from repro.classify import sniff_bytes
from repro.cloud import InMemoryBackend
from repro.core import BackupClient, MemorySource, RestoreClient, aa_dedupe_config
from repro.core.options import SchemeConfig
from repro.hashing.rolling import window_tables
from repro.metrics.report import Table
from repro.trace import run_paper_evaluation
from repro.util.units import KIB
from repro.workloads.presets import (
    MEDIA_VM_SHARES,
    OFFICE_SHARES,
    profiles_with_shares,
)


class TestPaperFiguresHelper:
    @pytest.fixture(scope="class")
    def figures(self):
        result = run_paper_evaluation(scale=0.001, sessions=2)
        return paper_figures_7_to_11(result=result)

    def test_series_scaled_to_paper(self, figures):
        up = figures.result.scale_to_paper()
        for name, run in figures.result.runs.items():
            raw = [r.cumulative_uploaded for r in run.sessions]
            scaled = figures.fig7_cumulative_storage[name]
            assert scaled == [int(v * up) for v in raw]

    def test_cost_components_positive(self, figures):
        for breakdown in figures.fig10_cost.values():
            assert breakdown.storage > 0
            assert breakdown.transfer > 0
            assert breakdown.requests >= 0
            assert breakdown.total == pytest.approx(
                breakdown.storage + breakdown.transfer
                + breakdown.requests)

    def test_energy_tracks_dedup_time(self, figures):
        for name, run in figures.result.runs.items():
            for record, energy in zip(run.sessions,
                                      figures.fig11_energy[name]):
                assert energy > 0
                assert energy == pytest.approx(
                    record.energy_joules * figures.result.scale_to_paper())


class TestWorkloadPresets:
    def test_shares_valid(self):
        for shares in (MEDIA_VM_SHARES, OFFICE_SHARES):
            assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)
            profiles = profiles_with_shares(shares)
            assert len(profiles) == 12
            for profile in profiles:
                assert profile.capacity_share == shares[profile.label]

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            profiles_with_shares({"mp3": 1.0})
        bad = dict(OFFICE_SHARES)
        bad["mp3"] += 0.5
        with pytest.raises(ValueError):
            profiles_with_shares(bad)

    def test_presets_change_generated_mix(self):
        from repro.util.units import MB
        from repro.workloads import WorkloadGenerator

        def vmdk_fraction(profiles):
            gen = WorkloadGenerator(total_bytes=30 * MB, profiles=profiles,
                                    seed=5, max_mean_file_size=2 * MB)
            snap = gen.initial_snapshot()
            vmdk = sum(c.size for p, c in snap.files.items()
                       if p.startswith("vmdk/"))
            return vmdk / snap.total_bytes()

        assert vmdk_fraction(profiles_with_shares(OFFICE_SHARES)) < \
            vmdk_fraction(profiles_with_shares(MEDIA_VM_SHARES))


class TestMiscGaps:
    def test_default_mask_bits_degenerate(self):
        # avg == min forces the fallback span.
        assert default_mask_bits(4096, 4096) >= 1

    def test_window_tables_cached_identity(self):
        from repro.hashing.rabin import POLY64
        a = window_tables(8, POLY64)
        b = window_tables(8, POLY64)
        assert (a == b).all()

    def test_sniff_short_head(self):
        # Heads shorter than any signature must not crash.
        assert sniff_bytes(b"").label == "unknown"
        assert sniff_bytes(b"M").label == "unknown"

    def test_table_nan_and_large_values(self):
        t = Table(["a", "b"])
        t.add_row(["x", float("nan")])
        t.add_row(["y", 123456.789])
        text = t.render()
        assert "nan" in text and "1.23e+05" in text

    def test_scheme_config_frozen(self):
        cfg = aa_dedupe_config()
        with pytest.raises(Exception):
            cfg.name = "mutated"

    def test_tier_layout_requires_policy(self):
        # index_namespace with tier layout groups by chunker name.
        cfg = SchemeConfig(name="x", index_layout="tier",
                           policy_table=None,
                           fixed_policy=aa_dedupe_config().policy_for(
                               __import__("repro.classify.filetype",
                                          fromlist=["Category"]
                                          ).Category.DYNAMIC))
        policy = cfg.fixed_policy
        assert cfg.index_namespace("whatever", policy) == policy.chunker

    def test_restore_no_verify_skips_counting(self, rng):
        import numpy as np
        files = {"a.doc": np.random.default_rng(0).integers(
            0, 256, 25_000, dtype=np.uint8).tobytes()}
        cloud = InMemoryBackend()
        BackupClient(cloud, aa_dedupe_config(
            container_size=32 * KIB)).backup(MemorySource(files))
        _out, report = RestoreClient(cloud,
                                     verify=False).restore_to_memory(0)
        assert report.chunks_verified == 0

    def test_encrypted_and_parallel_compose(self, rng):
        import numpy as np
        r = np.random.default_rng(4)
        files = {f"d/f{i}.doc": r.integers(0, 256, 20_000,
                                           dtype=np.uint8).tobytes()
                 for i in range(4)}
        files["m/x.mp3"] = r.integers(0, 256, 30_000,
                                      dtype=np.uint8).tobytes()
        cloud = InMemoryBackend()
        client = BackupClient(
            cloud,
            aa_dedupe_config(container_size=32 * KIB, parallel_workers=3,
                             encrypt_chunks=True),
            master_key=b"0" * 32)
        client.backup(MemorySource(files))
        restored, _ = RestoreClient(
            cloud, master_key=b"0" * 32).restore_to_memory(0)
        assert restored == files
