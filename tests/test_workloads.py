"""Tests for the composition model and workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.util.units import KIB, MB
from repro.workloads import (
    Composition,
    Extent,
    PAPER_PROFILES,
    WorkloadGenerator,
    block_bytes,
    materialize_composition,
    materialize_snapshot,
    profile_for,
    snapshot_to_memory_source,
    write_snapshot_to_directory,
)
from repro.workloads.compose import density_class_of, make_block_id
from repro.workloads.profiles import (
    DENSITY_SPARSE,
    EVAL_SHARES,
    TABLE1_REFERENCE,
    TINY_PROFILE,
)


def comp_of(*lengths, block_start=1000):
    """Composition of fresh single-block extents with given lengths."""
    return Composition([Extent(block_start + i, 0, n)
                        for i, n in enumerate(lengths)])


class TestExtentAndBlockIds:
    def test_invalid_extent(self):
        with pytest.raises(WorkloadError):
            Extent(1, 0, 0)
        with pytest.raises(WorkloadError):
            Extent(1, -1, 5)

    def test_block_id_density_roundtrip(self):
        block = make_block_id(12345, DENSITY_SPARSE)
        assert density_class_of(block) == DENSITY_SPARSE

    def test_block_id_density_range(self):
        with pytest.raises(WorkloadError):
            make_block_id(1, 9)


class TestComposition:
    def test_size(self):
        assert comp_of(10, 20, 30).size == 60

    def test_slice_within_one_extent(self):
        c = comp_of(100)
        (e,) = c.slice(10, 50)
        assert (e.start, e.length) == (10, 50)

    def test_slice_across_extents(self):
        c = comp_of(10, 10, 10)
        parts = c.slice(5, 20)
        assert [p.length for p in parts] == [5, 10, 5]
        assert parts[1].start == 0

    def test_slice_normalisation_content_equal(self):
        # The same content range sliced from different file positions
        # yields identical extent lists — the chunk-identity invariant.
        shared = Extent(42, 0, 1000)
        a = Composition([Extent(1, 0, 500), shared])
        b = Composition([shared])
        assert a.slice(500, 1000) == b.slice(0, 1000)

    def test_slice_bounds(self):
        with pytest.raises(WorkloadError):
            comp_of(10).slice(5, 10)

    def test_splice_insert(self):
        c = comp_of(100)
        out = c.splice(40, 0, [Extent(9, 0, 7)])
        assert out.size == 107
        assert [e.length for e in out.extents] == [40, 7, 60]

    def test_splice_replace(self):
        c = comp_of(100)
        out = c.splice(40, 20, [Extent(9, 0, 5)])
        assert out.size == 85

    def test_splice_many_equivalent_to_sequential(self):
        c = comp_of(50, 50, 50)
        edits = [(10, 5, [Extent(7, 0, 5)]), (60, 10, []),
                 (120, 0, [Extent(8, 0, 3)])]
        batched = c.splice_many(edits)
        # Apply one at a time, adjusting offsets for earlier edits.
        manual = c.splice(120, 0, [Extent(8, 0, 3)])
        manual = manual.splice(60, 10, [])
        manual = manual.splice(10, 5, [Extent(7, 0, 5)])
        assert batched == manual

    def test_splice_many_overlap_rejected(self):
        c = comp_of(100)
        with pytest.raises(WorkloadError):
            c.splice_many([(10, 20, []), (15, 5, [])])

    def test_equality_and_hash(self):
        assert comp_of(10, 20) == comp_of(10, 20)
        assert hash(comp_of(10)) == hash(comp_of(10))

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=8),
           st.data())
    @settings(max_examples=40)
    def test_property_slice_concatenation(self, lengths, data):
        c = comp_of(*lengths)
        cut = data.draw(st.integers(0, c.size))
        left, right = c.slice(0, cut), c.slice(cut, c.size - cut)
        assert Composition(left + right).size == c.size
        # Materialised bytes agree with direct materialisation.
        direct = materialize_composition(c)
        rejoined = b"".join(block_bytes(e.block, e.start, e.length)
                            for e in left + right)
        assert rejoined == direct


class TestBlockBytes:
    def test_deterministic(self):
        assert block_bytes(99, 0, 64) == block_bytes(99, 0, 64)

    def test_distinct_blocks_distinct_bytes(self):
        assert block_bytes(1, 0, 64) != block_bytes(2, 0, 64)

    def test_seekable(self):
        whole = block_bytes(123, 0, 4096)
        assert block_bytes(123, 1000, 96) == whole[1000:1096]

    def test_unaligned_seek(self):
        whole = block_bytes(5, 0, 200)
        assert block_bytes(5, 33, 50) == whole[33:83]

    def test_empty(self):
        assert block_bytes(5, 10, 0) == b""


class TestProfiles:
    def test_eval_shares_sum_to_one(self):
        assert sum(EVAL_SHARES.values()) == pytest.approx(1.0)

    def test_twelve_apps(self):
        assert len(PAPER_PROFILES) == 12
        assert {p.label for p in PAPER_PROFILES} == set(TABLE1_REFERENCE)

    def test_target_dr_matches_table1_sc(self):
        for p in PAPER_PROFILES:
            paper_sc_dr = TABLE1_REFERENCE[p.label][2]
            assert p.target_dr == pytest.approx(paper_sc_dr, rel=1e-6)

    def test_profile_for(self):
        assert profile_for("vmdk").dup_mode == "block"
        assert profile_for("tinymisc") is TINY_PROFILE
        with pytest.raises(KeyError):
            profile_for("nope")


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def sessions(self):
        gen = WorkloadGenerator(total_bytes=40 * MB, seed=3,
                                max_mean_file_size=2 * MB)
        return list(gen.sessions(4))

    def test_deterministic(self):
        a = WorkloadGenerator(total_bytes=20 * MB, seed=9).initial_snapshot()
        b = WorkloadGenerator(total_bytes=20 * MB, seed=9).initial_snapshot()
        assert a.files == b.files

    def test_seed_changes_output(self):
        a = WorkloadGenerator(total_bytes=20 * MB, seed=1).initial_snapshot()
        b = WorkloadGenerator(total_bytes=20 * MB, seed=2).initial_snapshot()
        assert a.files != b.files

    def test_capacity_near_target(self, sessions):
        total = sessions[0].total_bytes()
        assert 0.8 * 40 * MB < total < 1.3 * 40 * MB

    def test_all_apps_present(self, sessions):
        apps = {p.split("/", 1)[0] for p in sessions[0].files}
        assert apps >= set(EVAL_SHARES) | {"tiny"}

    def test_tiny_population_dominates_count(self, sessions):
        snap = sessions[0]
        tiny = sum(1 for p in snap.files if p.startswith("tiny/"))
        assert tiny / len(snap) > 0.45
        tiny_bytes = sum(c.size for p, c in snap.files.items()
                         if p.startswith("tiny/"))
        assert tiny_bytes / snap.total_bytes() < 0.05

    def test_tiny_files_under_threshold(self, sessions):
        for path, comp in sessions[0].files.items():
            if path.startswith("tiny/"):
                assert comp.size < 10 * KIB

    def test_weekly_churn_bounded(self, sessions):
        before, after = sessions[0], sessions[1]
        changed = sum(
            1 for p in after.files
            if p in before.files and after.files[p] is not before.files[p])
        assert 0 < changed < 0.5 * len(before)

    def test_unchanged_files_share_structure(self, sessions):
        before, after = sessions[0], sessions[1]
        same = [p for p in after.files
                if p in before.files
                and after.files[p] is before.files[p]]
        assert len(same) > 0.5 * len(before)

    def test_mtimes_bump_on_change(self, sessions):
        before, after = sessions[0], sessions[1]
        for p in after.files:
            if p in before.files and \
                    after.files[p] is not before.files[p]:
                assert after.mtimes[p] != before.mtimes[p]

    def test_mtimes_stable_when_unchanged(self, sessions):
        # The stat cache keys on (path, size, mtime): unchanged files
        # must carry the *same* stamp into the next snapshot, and every
        # stamp must be nonzero (0 is the engine's "unknown" sentinel
        # which disables replay).
        for before, after in zip(sessions, sessions[1:]):
            stable = [p for p in after.files
                      if p in before.files
                      and after.files[p] is before.files[p]]
            assert stable
            for p in stable:
                assert after.mtimes[p] == before.mtimes[p]
        for snap in sessions:
            assert all(m > 0 for m in snap.mtimes.values())
            assert set(snap.mtimes) == set(snap.files)

    def test_vmdk_mutations_are_aligned(self, sessions):
        # A changed VM image must keep >50% of its 8 KiB-aligned chunks.
        before, after = sessions[0], sessions[1]
        for p in after.files:
            if not p.startswith("vmdk/") or p not in before.files:
                continue
            if after.files[p] is before.files[p]:
                continue
            old, new = before.files[p], after.files[p]
            assert old.size == new.size  # in-place rewrites
            grid = 8 * KIB
            same = sum(
                1 for off in range(0, old.size - grid, grid)
                if old.slice(off, grid) == new.slice(off, grid))
            assert same > 0.5 * (old.size // grid)

    def test_total_bytes_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(total_bytes=1000)


class TestMaterialisation:
    def test_snapshot_roundtrip(self):
        gen = WorkloadGenerator(total_bytes=12 * MB, seed=5)
        snap = gen.initial_snapshot()
        files = materialize_snapshot(snap)
        assert set(files) == set(snap.files)
        for path, data in files.items():
            assert len(data) == snap.files[path].size

    def test_memory_source_lazy(self):
        gen = WorkloadGenerator(total_bytes=12 * MB, seed=5)
        snap = gen.initial_snapshot()
        source = snapshot_to_memory_source(snap)
        assert source.total_bytes() == snap.total_bytes()
        sf = next(iter(source))
        assert len(sf.read()) == sf.size

    def test_write_to_directory(self, tmp_path):
        gen = WorkloadGenerator(total_bytes=12 * MB, seed=5)
        snap = gen.initial_snapshot()
        written = write_snapshot_to_directory(snap, tmp_path)
        assert written == snap.total_bytes()
        some_path = next(iter(snap.files))
        assert (tmp_path / some_path).exists()

    def test_identical_compositions_identical_bytes(self):
        gen = WorkloadGenerator(total_bytes=12 * MB, seed=5)
        snap = gen.initial_snapshot()
        # Find a duplicated composition (copy traffic) if present; at
        # minimum, materialising twice is stable.
        path = next(iter(snap.files))
        comp = snap.files[path]
        assert materialize_composition(comp) == \
            materialize_composition(comp)
