"""Tests for the trace layer: simulated chunking, the trace engine, the
evaluation driver — and cross-validation against the real-bytes engine."""

import pytest

from repro.baselines import (
    aa_dedupe_config,
    all_scheme_configs,
    avamar_config,
    jungle_disk_config,
)
from repro.cloud import InMemoryBackend
from repro.core import BackupClient
from repro.simulate.diskmodel import IndexResidencyModel
from repro.trace import (
    BoundaryModel,
    TraceBackupClient,
    run_paper_evaluation,
    sim_chunks,
    wfc_id,
)
from repro.util.units import KIB, MB
from repro.workloads import Composition, Extent, WorkloadGenerator
from repro.workloads.compose import make_block_id
from repro.workloads.materialize import snapshot_to_memory_source
from repro.workloads.profiles import DENSITY_DENSE, DENSITY_SPARSE


def fresh(length, counter, density=DENSITY_DENSE):
    return Extent(make_block_id(counter, density), 0, length)


class TestSimChunks:
    def test_wfc_identity(self):
        c1 = Composition([fresh(1000, 1)])
        c2 = Composition([fresh(1000, 1)])
        c3 = Composition([fresh(1000, 2)])
        assert wfc_id(c1) == wfc_id(c2) != wfc_id(c3)

    def test_partition_lengths(self):
        comp = Composition([fresh(100 * KIB, 5)])
        for method in ("wfc", "sc", "cdc"):
            chunks = sim_chunks(comp, method, BoundaryModel())
            assert sum(length for _id, length in chunks) == comp.size

    def test_sc_chunk_sizes(self):
        comp = Composition([fresh(20 * KIB, 6)])
        chunks = sim_chunks(comp, "sc", chunk_size=8 * KIB)
        assert [length for _id, length in chunks] == [8 * KIB, 8 * KIB,
                                                      4 * KIB]

    def test_sc_alignment_sensitivity(self):
        # The same content shifted by one byte: SC finds nothing.
        shared = fresh(64 * KIB, 7)
        a = Composition([shared])
        b = Composition([fresh(1, 8), shared])
        ids_a = {cid for cid, _l in sim_chunks(a, "sc")}
        ids_b = {cid for cid, _l in sim_chunks(b, "sc")}
        assert not (ids_a & ids_b)

    def test_cdc_shift_resilience(self):
        # The same content shifted: CDC re-finds most chunks.
        shared = fresh(512 * KIB, 9)
        a = Composition([shared])
        b = Composition([fresh(1, 10), shared])
        model = BoundaryModel()
        ids_a = {cid for cid, _l in sim_chunks(a, "cdc", model)}
        ids_b = {cid for cid, _l in sim_chunks(b, "cdc", model)}
        assert len(ids_a & ids_b) >= 0.7 * len(ids_a)

    def test_cdc_chunk_bounds(self):
        comp = Composition([fresh(1 * MB, 11)])
        chunks = sim_chunks(comp, "cdc", BoundaryModel(),
                            min_size=2 * KIB, max_size=16 * KIB)
        for _id, length in chunks[:-1]:
            assert 2 * KIB <= length <= 16 * KIB

    def test_sparse_density_forces_max_cuts(self):
        # VM-image-like content: boundary spacing > max chunk size, so
        # most cuts are forced at max size (Observation 3).
        comp = Composition([fresh(1 * MB, 12, DENSITY_SPARSE)])
        chunks = sim_chunks(comp, "cdc", BoundaryModel())
        forced = sum(1 for _id, length in chunks if length == 16 * KIB)
        assert forced > 0.5 * len(chunks)

    def test_dense_density_rarely_forces(self):
        comp = Composition([fresh(1 * MB, 13, DENSITY_DENSE)])
        chunks = sim_chunks(comp, "cdc", BoundaryModel())
        forced = sum(1 for _id, length in chunks if length == 16 * KIB)
        assert forced < 0.5 * len(chunks)

    def test_boundary_model_deterministic(self):
        block = make_block_id(77, DENSITY_DENSE)
        a = BoundaryModel().positions(block, 100_000)
        b = BoundaryModel().positions(block, 100_000)
        assert (a == b).all()

    def test_boundary_model_cache_extension(self):
        model = BoundaryModel()
        block = make_block_id(78, DENSITY_DENSE)
        first = model.positions(block, 10_000)
        extended = model.positions(block, 500_000)
        assert (extended[: first.size] == first).all()

    def test_empty_composition(self):
        assert sim_chunks(Composition([]), "cdc", BoundaryModel()) == []


class TestTraceEngine:
    def make_snapshots(self, n=3, total=30 * MB, seed=4):
        gen = WorkloadGenerator(total_bytes=total, seed=seed,
                                max_mean_file_size=total // 20)
        return list(gen.sessions(n))

    def test_second_session_dedups(self):
        snaps = self.make_snapshots()
        client = TraceBackupClient(aa_dedupe_config())
        s1 = client.backup(snaps[0])
        s2 = client.backup(snaps[1])
        assert s2.bytes_unique < 0.3 * s1.bytes_unique
        assert s2.dedup_ratio > 3.0

    def test_incremental_skips_unchanged(self):
        snaps = self.make_snapshots()
        client = TraceBackupClient(jungle_disk_config())
        client.backup(snaps[0])
        s2 = client.backup(snaps[1])
        assert s2.files_unchanged > 0.5 * s2.files_total
        # Unchanged files are not even read in incremental mode.
        assert s2.ops.read_bytes < s2.bytes_scanned

    def test_namespaces_by_layout(self):
        snaps = self.make_snapshots(n=1)
        aa = TraceBackupClient(aa_dedupe_config())
        aa.backup(snaps[0])
        assert len(aa.namespace_sizes()) > 3  # per-app
        av = TraceBackupClient(avamar_config())
        av.backup(snaps[0])
        assert list(av.namespace_sizes()) == ["global"]

    def test_residency_drives_disk_ios(self):
        snaps = self.make_snapshots(n=1)
        tight = IndexResidencyModel(ram_budget=1024, entry_bytes=48)
        roomy = IndexResidencyModel(ram_budget=1 << 30, entry_bytes=48)
        hot = TraceBackupClient(avamar_config(), residency=tight)
        hot.backup(snaps[0])
        cold = TraceBackupClient(avamar_config(), residency=roomy)
        cold.backup(snaps[0])
        assert hot.disk_ios_last_session > 100
        assert cold.disk_ios_last_session == 0

    def test_container_accounting(self):
        snaps = self.make_snapshots(n=1)
        aa = TraceBackupClient(aa_dedupe_config())
        stats = aa.backup(snaps[0])
        # Padded containers: uploads exceed unique payload, and PUTs are
        # roughly uploads/container_size, far below chunk count.
        assert stats.bytes_uploaded >= stats.bytes_unique
        assert stats.put_requests < stats.ops.chunks_produced / 5

    def test_per_chunk_put_accounting(self):
        snaps = self.make_snapshots(n=1)
        av = TraceBackupClient(avamar_config())
        stats = av.backup(snaps[0])
        # manifest put + one put per unique chunk.
        assert stats.put_requests == stats.chunks_unique + 1


class TestModelledStageSeconds:
    """The per-stage decomposition must sum exactly to the driver's
    modelled dedup time (trace/driver.py's ``dedup_seconds`` formula)."""

    def _stats_and_ios(self, config):
        gen = WorkloadGenerator(total_bytes=20 * MB, seed=11,
                                max_mean_file_size=1 * MB)
        snaps = list(gen.sessions(2))
        client = TraceBackupClient(config)
        records = []
        for snap in snaps:
            stats = client.backup(snap)
            records.append((stats, client.disk_ios_last_session))
        return records

    @pytest.mark.parametrize("config_factory",
                             [aa_dedupe_config, jungle_disk_config,
                              avamar_config])
    def test_sums_to_driver_formula(self, config_factory):
        from repro.simulate.cpumodel import PAPER_CPU, dedup_cpu_seconds
        from repro.simulate.diskmodel import PAPER_DISK
        from repro.trace.engine import modelled_stage_seconds

        for stats, disk_ios in self._stats_and_ios(config_factory()):
            stages = modelled_stage_seconds(stats, disk_ios=disk_ios)
            assert set(stages) == {"read", "chunk", "hash", "index",
                                   "commit"}
            assert all(v >= 0.0 for v in stages.values())
            driver_seconds = (
                dedup_cpu_seconds(stats.ops, PAPER_CPU,
                                  files=stats.files_total)
                + PAPER_DISK.read_seconds(stats.ops.read_bytes)
                + PAPER_DISK.random_io_seconds(disk_ios))
            assert sum(stages.values()) == pytest.approx(
                driver_seconds, rel=1e-12)

    def test_default_disk_ios_from_ledger(self):
        from repro.trace.engine import modelled_stage_seconds

        (stats, _ios), _ = self._stats_and_ios(aa_dedupe_config())
        explicit = modelled_stage_seconds(
            stats, disk_ios=float(stats.ops.index_disk_probes))
        assert modelled_stage_seconds(stats) == explicit


class TestCrossValidation:
    """The trace engine and the real-bytes engine must agree."""

    @pytest.mark.parametrize("config_factory", [
        aa_dedupe_config, avamar_config, jungle_disk_config])
    def test_dedup_ratio_agreement(self, config_factory):
        gen = WorkloadGenerator(total_bytes=14 * MB, seed=21,
                                max_mean_file_size=1 * MB)
        snaps = list(gen.sessions(2))
        trace_client = TraceBackupClient(config_factory())
        trace_stats = [trace_client.backup(s) for s in snaps]
        # The trace engine models the dedup policy, not the stat-cache
        # recipe replay (which changes what tiny files re-store on
        # session 2), so the real engine runs cache-off here.
        config = config_factory()
        if config.stat_cache:
            config = config.with_(stat_cache=False)
        real_client = BackupClient(InMemoryBackend(), config)
        real_stats = [real_client.backup(snapshot_to_memory_source(s))
                      for s in snaps]
        for ts, rs in zip(trace_stats, real_stats):
            assert ts.bytes_scanned == rs.bytes_scanned
            assert ts.files_total == rs.files_total
            # Unique-byte agreement within 12 % (boundary models differ
            # in detail, not in behaviour).
            assert ts.bytes_unique == pytest.approx(rs.bytes_unique,
                                                    rel=0.12)


class TestDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_paper_evaluation(scale=0.002, sessions=5)

    def test_all_schemes_present(self, result):
        assert set(result.runs) == {c.name for c in all_scheme_configs()}

    def test_sessions_recorded(self, result):
        for run in result.runs.values():
            assert len(run.sessions) == 5
            for record in run.sessions:
                assert record.dedup_seconds > 0
                assert record.window_seconds >= max(
                    record.dedup_seconds, record.transfer_seconds) * 0.999

    def test_cumulative_monotone(self, result):
        for run in result.runs.values():
            series = [r.cumulative_uploaded for r in run.sessions]
            assert series == sorted(series)

    def test_paper_shape_storage(self, result):
        total = {n: r.total_uploaded() for n, r in result.runs.items()}
        # Source dedup beats incremental; AA no worse than chunk-level.
        assert total["AA-Dedupe"] < total["JungleDisk"]
        assert total["AA-Dedupe"] < total["BackupPC"]
        assert total["AA-Dedupe"] <= 1.1 * total["Avamar"]
        assert total["AA-Dedupe"] <= 1.1 * total["SAM"]

    def test_paper_shape_efficiency(self, result):
        de = {n: r.mean_efficiency() for n, r in result.runs.items()}
        # AA-Dedupe leads every dedup scheme by a clear factor.
        for other in ("BackupPC", "SAM", "Avamar"):
            assert de["AA-Dedupe"] > 1.3 * de[other]
        # Avamar is the least efficient dedup scheme (paper: 1/7th).
        assert de["Avamar"] == min(de[n] for n in
                                   ("BackupPC", "SAM", "Avamar"))

    def test_paper_shape_window(self, result):
        mean_window = {
            n: sum(r.window_seconds for r in run.sessions) / 5
            for n, run in result.runs.items()}
        assert mean_window["AA-Dedupe"] == min(mean_window.values())

    def test_paper_shape_cost(self, result):
        up = result.scale_to_paper()
        cost = {n: r.monthly_cost(scale_to_paper=up)
                for n, r in result.runs.items()}
        assert cost["AA-Dedupe"] == min(cost.values())

    def test_paper_shape_energy(self, result):
        energy = {n: sum(r.energy_joules for r in run.sessions)
                  for n, run in result.runs.items()}
        assert energy["AA-Dedupe"] < energy["SAM"]
        assert energy["AA-Dedupe"] < energy["Avamar"] / 2

    def test_shared_snapshots_between_schemes(self, result):
        scanned = {n: [r.stats.bytes_scanned for r in run.sessions]
                   for n, run in result.runs.items()}
        reference = next(iter(scanned.values()))
        assert all(v == reference for v in scanned.values())
