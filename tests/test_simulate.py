"""Tests for the virtual platform models (clock, CPU, disk, power,
pipeline window)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import OpCounters
from repro.errors import SimulationError
from repro.simulate import (
    IndexResidencyModel,
    PAPER_CPU,
    PAPER_DISK,
    PAPER_POWER,
    PowerModel,
    VirtualClock,
    backup_window,
    dedup_cpu_seconds,
    dedup_throughput,
)
from repro.util.units import MB, MIB


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(7.5)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-1)

    def test_reset(self):
        clock = VirtualClock(10)
        clock.advance(5)
        clock.reset()
        assert clock.now() == 0.0

    def test_stopwatch_compatible(self):
        from repro.util.timer import Stopwatch
        clock = VirtualClock()
        sw = Stopwatch(clock=clock)
        sw.start()
        clock.advance(3.0)
        assert sw.stop() == pytest.approx(3.0)


class TestCPUModel:
    def test_hash_ordering_matches_paper(self):
        # Fig. 3: Rabin < MD5 < SHA-1.
        t = {h: PAPER_CPU.hash_seconds(h, 60 * MB)
             for h in ("rabin12", "md5", "sha1")}
        assert t["rabin12"] < t["md5"] < t["sha1"]

    def test_hash_throughput_inverse(self):
        thr = PAPER_CPU.hash_throughput("md5")
        assert PAPER_CPU.hash_seconds("md5", thr) == pytest.approx(1.0)

    def test_unknown_hash(self):
        with pytest.raises(KeyError):
            PAPER_CPU.hash_seconds("crc32", 100)

    def test_wfc_and_sc_nearly_equal_total(self):
        # Observation 3/Fig. 3: time dominated by capacity, not
        # granularity — SC adds only per-chunk overhead.
        data = 60 * MB
        ops_wfc = OpCounters(hashed_bytes={"md5": data}, chunks_produced=1)
        ops_sc = OpCounters(hashed_bytes={"md5": data},
                            chunks_produced=data // 8192)
        t_wfc = dedup_cpu_seconds(ops_wfc)
        t_sc = dedup_cpu_seconds(ops_sc)
        assert t_wfc < t_sc < 1.25 * t_wfc

    def test_cdc_scan_dominates_fingerprint(self):
        # Sec. III-D: for CDC, boundary identification outweighs the
        # chunk fingerprinting cost.
        assert PAPER_CPU.cdc_scan_seconds(MB) > PAPER_CPU.hash_seconds(
            "sha1", MB)

    def test_dedup_cpu_seconds_components(self):
        ops = OpCounters(hashed_bytes={"sha1": 10 * MB},
                         cdc_scanned_bytes=10 * MB,
                         chunks_produced=1000,
                         index_lookups=1000)
        total = dedup_cpu_seconds(ops, files=10)
        parts = (PAPER_CPU.hash_seconds("sha1", 10 * MB)
                 + PAPER_CPU.cdc_scan_seconds(10 * MB)
                 + 1000 * PAPER_CPU.cycles_per_chunk / PAPER_CPU.frequency_hz
                 + 10 * PAPER_CPU.cycles_per_file / PAPER_CPU.frequency_hz
                 + 1000 * PAPER_CPU.cycles_per_memory_lookup
                 / PAPER_CPU.frequency_hz)
        assert total == pytest.approx(parts)

    @given(st.integers(0, 10**9))
    @settings(max_examples=20)
    def test_property_monotone_in_bytes(self, nbytes):
        a = dedup_cpu_seconds(OpCounters(hashed_bytes={"md5": nbytes}))
        b = dedup_cpu_seconds(OpCounters(hashed_bytes={"md5": nbytes + 1}))
        assert b >= a


class TestDiskModel:
    def test_read_write_seconds(self):
        assert PAPER_DISK.read_seconds(70 * MB) == pytest.approx(1.0)
        assert PAPER_DISK.write_seconds(60 * MB) == pytest.approx(1.0)

    def test_random_io(self):
        assert PAPER_DISK.random_io_seconds(1000) == pytest.approx(9.0)


class TestIndexResidency:
    def test_small_index_resident(self):
        model = IndexResidencyModel(ram_budget=MIB, entry_bytes=64)
        assert model.miss_ratio(100) == 0.0
        assert model.lookup_io_count(10_000, 100) == 0.0

    def test_large_index_spills(self):
        model = IndexResidencyModel(ram_budget=MIB, entry_bytes=64)
        big = 10 * MIB // 64
        assert 0.5 < model.miss_ratio(big) < 1.0
        assert model.insert_io_count(1000, big) > 0

    def test_miss_monotone_in_entries(self):
        model = IndexResidencyModel(ram_budget=MIB, entry_bytes=64)
        sizes = [10_000, 50_000, 200_000, 10**6]
        misses = [model.miss_ratio(s) for s in sizes]
        assert misses == sorted(misses)

    def test_locality_exponent_softens(self):
        linear = IndexResidencyModel(ram_budget=MIB, entry_bytes=64,
                                     locality_exponent=1.0)
        local = IndexResidencyModel(ram_budget=MIB, entry_bytes=64,
                                    locality_exponent=2.0)
        entries = 2 * MIB // 64  # 50 % spill
        assert local.miss_ratio(entries) < linear.miss_ratio(entries)

    def test_the_papers_argument(self):
        """The application-aware index claim, quantified: twelve small
        subindices are all RAM-resident while their union spills."""
        model = IndexResidencyModel()
        per_app = 1_500_000  # entries in the largest subindex
        total = 4 * per_app  # the unified index
        assert model.miss_ratio(per_app) == 0.0
        assert model.miss_ratio(total) > 0.1


class TestPowerModel:
    def test_dedup_energy(self):
        assert PAPER_POWER.dedup_energy_joules(100) == pytest.approx(
            100 * (PAPER_POWER.idle_watts + PAPER_POWER.cpu_active_watts))

    def test_pipelined_session_cheaper_than_serial(self):
        p = PowerModel()
        serial = p.session_energy_joules(100, 100, pipelined=False)
        overlapped = p.session_energy_joules(100, 100, pipelined=True)
        assert overlapped < serial

    def test_longer_dedup_more_energy(self):
        assert PAPER_POWER.dedup_energy_joules(200) > \
            PAPER_POWER.dedup_energy_joules(100)


class TestPipelineWindow:
    def test_pipelined_is_max(self):
        assert backup_window(100, 60) == 100
        assert backup_window(60, 100) == 100

    def test_serial_is_sum(self):
        assert backup_window(100, 60, pipelined=False) == 160

    def test_throughput(self):
        assert dedup_throughput(1000, 10) == 100
        assert dedup_throughput(1000, 0) == float("inf")

    @given(st.floats(0.1, 1e6), st.floats(0.1, 1e6))
    @settings(max_examples=30)
    def test_property_window_bounds(self, dedup, transfer):
        window = backup_window(dedup, transfer)
        assert max(dedup, transfer) == window
        assert window <= dedup + transfer
