"""Regression tests for index-replication staleness (ISSUE 3).

Two bugs made cloud index replicas silently stale:

* ``push`` skipped any subindex whose entry *count* matched the last
  push, so refcount-only updates (last-writer-wins re-inserts) never
  re-replicated — a recovered index fed GC stale refcounts;
* ``pull`` recorded the *merged local* size as pushed, so local-only
  entries that survived a recovery were treated as already replicated
  and never reached the cloud.

Replication now keys off per-subindex mutation generations plus a
content digest of what the replica actually holds.
"""

import hashlib

import pytest

from repro.cloud import InMemoryBackend
from repro.core import naming
from repro.core.sync import IndexSynchronizer
from repro.index import AppAwareIndex, IndexEntry


def fp(i: int) -> bytes:
    return hashlib.sha1(str(i).encode()).digest()


def entry(i: int, refcount: int = 1) -> IndexEntry:
    return IndexEntry(fingerprint=fp(i), container_id=i // 8,
                      offset=i * 64, length=64, refcount=refcount)


def replica_refcounts(cloud, app: str) -> dict:
    blob = cloud.get(naming.index_key(app))
    record = IndexEntry.RECORD_SIZE
    entries = [IndexEntry.unpack(blob[pos:pos + record])
               for pos in range(0, len(blob), record)]
    return {e.fingerprint: e.refcount for e in entries}


@pytest.fixture
def populated():
    cloud = InMemoryBackend()
    index = AppAwareIndex()
    for i in range(5):
        index.insert("doc", entry(i))
    for i in range(10, 13):
        index.insert("mp3", entry(i))
    sync = IndexSynchronizer(cloud)
    assert sync.push(index) == 2
    return cloud, index, sync


class TestRefcountReplication:
    def test_refcount_bump_triggers_repush(self, populated):
        # THE regression: same entry count, different refcount — the
        # old size heuristic skipped this push entirely.
        cloud, index, sync = populated
        existing = index.lookup("doc", fp(0))
        index.insert("doc", existing.bumped(3))
        assert index.sizes()["doc"] == 5  # count unchanged
        assert sync.push(index) == 1
        assert replica_refcounts(cloud, "doc")[fp(0)] == 4

    def test_only_dirty_subindices_reupload(self, populated):
        # Exactly the mutated subindex replicates; the clean one skips.
        cloud, index, sync = populated
        puts_before = cloud.stats.put_requests
        index.insert("mp3", index.lookup("mp3", fp(11)).bumped())
        assert sync.push(index) == 1
        assert cloud.stats.put_requests - puts_before == 1
        assert replica_refcounts(cloud, "mp3")[fp(11)] == 2

    def test_clean_push_uploads_nothing(self, populated):
        cloud, _index, sync = populated
        puts_before = cloud.stats.put_requests
        assert sync.push(_index) == 0
        assert cloud.stats.put_requests == puts_before

    def test_identical_reinsert_skips_upload(self, populated):
        # A mutation that leaves the serialised content byte-identical
        # (re-insert of the same entry) is detected by the digest and
        # does not burn an upload.
        cloud, index, sync = populated
        index.insert("doc", index.lookup("doc", fp(1)))
        puts_before = cloud.stats.put_requests
        assert sync.push(index) == 0
        assert cloud.stats.put_requests == puts_before


class TestPullAccounting:
    def test_pull_into_empty_is_clean(self, populated):
        # Recovery into a fresh index: local equals the replica, so the
        # next push has nothing to do.
        cloud, index, _sync = populated
        fresh = AppAwareIndex()
        resync = IndexSynchronizer(cloud)
        assert resync.pull(fresh) == len(index)
        assert resync.push(fresh) == 0

    def test_local_survivors_reach_cloud_after_pull(self, populated):
        # THE regression: pull into a non-empty subindex used to record
        # the merged size as pushed, so local-only entries never
        # replicated on the next push.
        cloud, _index, _sync = populated
        survivor = AppAwareIndex()
        survivor.insert("doc", entry(99))  # local-only, not in replica
        resync = IndexSynchronizer(cloud)
        resync.pull(survivor)
        assert survivor.lookup("doc", fp(99)) is not None
        assert resync.push(survivor) == 1  # doc re-replicates
        assert fp(99) in replica_refcounts(cloud, "doc")
        # Round-trip: a second recovery sees the survivor.
        rebuilt = AppAwareIndex()
        IndexSynchronizer(cloud).pull(rebuilt)
        assert rebuilt.lookup("doc", fp(99)) == entry(99)

    def test_pull_then_refcount_bump_still_repushes(self, populated):
        cloud, _index, _sync = populated
        fresh = AppAwareIndex()
        resync = IndexSynchronizer(cloud)
        resync.pull(fresh)
        fresh.insert("mp3", fresh.lookup("mp3", fp(10)).bumped())
        assert resync.push(fresh) == 1
        assert replica_refcounts(cloud, "mp3")[fp(10)] == 2

    def test_pull_preserves_newer_local_state(self, populated):
        # Local entries win over replica entries for the same key, and
        # the divergence is pushed back out.
        cloud, _index, _sync = populated
        local = AppAwareIndex()
        local.insert("doc", entry(0, refcount=7))
        resync = IndexSynchronizer(cloud)
        resync.pull(local)
        assert local.lookup("doc", fp(0)).refcount == 7
        assert resync.push(local) == 1
        assert replica_refcounts(cloud, "doc")[fp(0)] == 7
