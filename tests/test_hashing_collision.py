"""Tests for collision-probability arithmetic (repro.hashing.collision)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.collision import (
    HARDWARE_ERROR_RATE,
    collision_probability,
    required_bits,
    safe_for_dataset,
)


class TestCollisionProbability:
    def test_zero_or_one_item(self):
        assert collision_probability(0, 64) == 0.0
        assert collision_probability(1, 64) == 0.0

    def test_monotone_in_items(self):
        assert collision_probability(10**6, 96) < collision_probability(
            10**7, 96)

    def test_monotone_in_bits(self):
        assert collision_probability(10**6, 128) < collision_probability(
            10**6, 96)

    def test_matches_closed_form_small(self):
        # n=2, b bits: P = 1 - exp(-2/2^(b+1)) ~= 2^-b.
        p = collision_probability(2, 16)
        assert p == pytest.approx(-math.expm1(-2 / 2**17))

    def test_saturates_at_one(self):
        assert collision_probability(10**9, 8) == pytest.approx(1.0)


class TestRequiredBits:
    def test_inverse_of_probability(self):
        bits = required_bits(10**6, 1e-15)
        assert collision_probability(10**6, bits) <= 1e-15
        assert collision_probability(10**6, bits - 2) > 1e-15

    def test_trivial_population(self):
        assert required_bits(1, 0.5) == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            required_bits(100, 0.0)
        with pytest.raises(ValueError):
            required_bits(100, 1.0)

    @given(st.integers(2, 10**8), st.floats(1e-18, 0.5))
    @settings(max_examples=30)
    def test_property_sufficient(self, n, p):
        assert collision_probability(n, required_bits(n, p)) <= p


class TestPaperArgument:
    """Sec. III-D: weak hashes are safe when collisions are rarer than
    hardware errors."""

    def test_wfc_rabin12_safe_for_pc_scale(self):
        # ~10^6 compressed files at 96 bits.
        assert safe_for_dataset(10**6, 96)

    def test_sc_md5_safe_for_tb_scale(self):
        # A TB of 8 KiB chunks is ~1.3e8 chunks at 128 bits.
        assert safe_for_dataset(130_000_000, 128)

    def test_weak_hash_unsafe_at_datacenter_scale(self):
        # The same 96-bit hash is NOT safe for 10^12 chunks — the reason
        # target dedup systems use SHA-1 everywhere.
        assert not safe_for_dataset(10**12, 96)

    def test_threshold_constant(self):
        assert HARDWARE_ERROR_RATE == 1e-15
