#!/usr/bin/env python3
"""Disaster recovery: lose the client, keep the cloud, carry on.

Demonstrates the paper's index-synchronisation design (Sec. III-E):

1. a client backs up two weekly snapshots (index synced to the cloud);
2. the laptop "dies" — all local state (index, manifests) is discarded;
3. a brand-new client pulls the application-aware index from the cloud,
   continues deduplicating against the data already stored, and the
   whole history remains restorable.

Usage::

    python examples/disaster_recovery.py
"""

from __future__ import annotations

from repro import BackupClient, RestoreClient, aa_dedupe_config
from repro.cloud import InMemoryBackend
from repro.core.sync import IndexSynchronizer
from repro.util.units import MB, format_bytes
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)


def main() -> None:
    generator = WorkloadGenerator(total_bytes=20 * MB, seed=77,
                                  max_mean_file_size=2 * MB)
    snapshots = list(generator.sessions(3))
    cloud = InMemoryBackend()

    print("== life before the disaster ==")
    client = BackupClient(cloud, aa_dedupe_config())
    for snap in snapshots[:2]:
        stats = client.backup(snapshot_to_memory_source(snap))
        print(f"  session {stats.session_id}: uploaded "
              f"{format_bytes(stats.bytes_uploaded)} "
              f"(DR {stats.dedup_ratio:.1f})")
    index_size = len(client.index)
    print(f"  local index: {index_size} fingerprints across "
          f"{len(client.index.apps)} application subindices")

    print("\n== laptop stolen; local state gone ==")
    del client

    print("\n== new machine: pull index, resume backups ==")
    new_client = BackupClient(cloud, aa_dedupe_config())
    restored_entries = IndexSynchronizer(cloud).pull(new_client.index)
    print(f"  recovered {restored_entries} index entries from the cloud")
    assert restored_entries == index_size

    stats = new_client.backup(snapshot_to_memory_source(snapshots[2]),
                              session_id=2)
    print(f"  session 2 on the new machine: uploaded "
          f"{format_bytes(stats.bytes_uploaded)} "
          f"(DR {stats.dedup_ratio:.1f}) — dedup continuity preserved")

    print("\n== every session is still restorable ==")
    for sid, snap in enumerate(snapshots):
        restored, report = RestoreClient(cloud).restore_to_memory(sid)
        assert restored == materialize_snapshot(snap)
        print(f"  session {sid}: {report.files_restored} files verified")
    print("disaster recovery complete")


if __name__ == "__main__":
    main()
