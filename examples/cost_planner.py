#!/usr/bin/env python3
"""Cloud-backup cost planner built on the paper's models.

Given a dataset size, an expected dedup ratio and a WAN uplink, prints
what each design decision is worth: the backup window (paper Eq. BWS),
the monthly S3 bill (paper Eq. CC) and the effect of container size on
request cost and goodput — the quantified version of Sections III-F and
IV-E.

Usage::

    python examples/cost_planner.py [DATASET_GB] [DEDUP_RATIO] [UP_KBPS]
"""

from __future__ import annotations

import sys

from repro.cloud.pricing import S3_APRIL_2011
from repro.cloud.wan import WANLink
from repro.metrics import Table, backup_window_seconds, cloud_cost
from repro.util.units import GB, KB, KIB, MIB, format_bytes, format_seconds


def main() -> None:
    dataset_gb = float(sys.argv[1]) if len(sys.argv) > 1 else 35.0
    dedup_ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0
    up_kbps = float(sys.argv[3]) if len(sys.argv) > 3 else 500.0
    dataset = dataset_gb * GB
    uplink = up_kbps * KB

    print(f"dataset {dataset_gb:.0f} GB, dedup ratio {dedup_ratio:.0f}, "
          f"uplink {format_bytes(uplink, decimal=True)}/s\n")

    # --- backup window vs dedup throughput ------------------------------
    table = Table(["dedup throughput", "backup window", "bound by"],
                  title="Backup window: BWS = DS x max(1/DT, 1/(DR*NT))")
    for dt_mb in (1, 5, 20, 50, 200):
        dt = dt_mb * 1e6
        window = backup_window_seconds(dataset, dt, dedup_ratio, uplink)
        transfer = dataset / (dedup_ratio * uplink)
        bound = "transfer (WAN)" if window == transfer else "dedup (CPU/IO)"
        table.add_row([f"{dt_mb} MB/s", format_seconds(window), bound])
    print(table.render(), "\n")

    # --- monthly bill vs container size ----------------------------------
    stored = dataset / dedup_ratio
    table = Table(["object size", "PUT requests", "goodput", "monthly $"],
                  title="Container size vs request cost "
                        "(April-2011 S3 prices)")
    wan = WANLink(up_bandwidth=uplink, concurrent_requests=1)
    for size in (10 * KIB, 100 * KIB, 1 * MIB, 4 * MIB):
        puts = int(stored / size)
        bill = cloud_cost(stored, stored, puts, S3_APRIL_2011)
        table.add_row([format_bytes(size), f"{puts:,}",
                       format_bytes(wan.effective_upload_rate(size),
                                    decimal=True) + "/s",
                       bill.total])
    print(table.render())
    print("\n(the paper's 1 MB containers sit where goodput saturates and"
          " request cost vanishes)")


if __name__ == "__main__":
    main()
