#!/usr/bin/env python3
"""Compare all five backup schemes on the same real-bytes workload.

Runs Jungle Disk, BackupPC, Avamar, SAM and AA-Dedupe — all as
configurations of the same engine — over three weekly snapshots of a
synthetic PC dataset, with real chunking/hashing/containers against an
in-memory cloud, and prints the per-scheme outcome (Fig. 7/8-style, at
laptop scale).

Usage::

    python examples/compare_schemes.py [TOTAL_MB]
"""

from __future__ import annotations

import sys

from repro import BackupClient, RestoreClient, all_scheme_configs
from repro.cloud import InMemoryBackend
from repro.metrics import Table
from repro.util.units import MB, format_bytes
from repro.workloads import WorkloadGenerator, snapshot_to_memory_source


def main() -> None:
    total = int(sys.argv[1]) * MB if len(sys.argv) > 1 else 24 * MB
    generator = WorkloadGenerator(total_bytes=total, seed=11,
                                  max_mean_file_size=total // 16)
    snapshots = list(generator.sessions(3))
    print(f"workload: {len(snapshots)} weekly snapshots of "
          f"{format_bytes(snapshots[0].total_bytes())} "
          f"({len(snapshots[0])} files)\n")

    table = Table(["scheme", "stored", "uploaded", "PUTs", "mean DR",
                   "dedup s", "restore ok"],
                  title="Five schemes, one engine (real bytes)")
    for config in all_scheme_configs():
        cloud = InMemoryBackend()
        client = BackupClient(cloud, config)
        stats = [client.backup(snapshot_to_memory_source(s))
                 for s in snapshots]
        # verify the final session restores bit-exactly
        restored, _report = RestoreClient(cloud).restore_to_memory(2)
        from repro.workloads import materialize_snapshot
        ok = restored == materialize_snapshot(snapshots[2])
        table.add_row([
            config.name,
            format_bytes(sum(s.bytes_unique for s in stats)),
            format_bytes(sum(s.bytes_uploaded for s in stats)),
            sum(s.put_requests for s in stats),
            sum(s.dedup_ratio for s in stats) / len(stats),
            f"{sum(s.dedup_wall_seconds for s in stats):.2f}",
            "yes" if ok else "NO",
        ])
        client.close()
    print(table.render())
    print("\n(stored = unique payload bytes; uploaded includes container"
          " framing/padding and manifests)")


if __name__ == "__main__":
    main()
