#!/usr/bin/env python3
"""Reproduce the paper's full evaluation (Figs. 7–11) in one run.

Drives the trace engine over the 10-weekly-full-backup workload at a
configurable fraction of the paper's 351 GB and prints every figure as
a table, with paper-scale estimates.

Usage::

    python examples/paper_evaluation.py [SCALE]   # default 0.004
"""

from __future__ import annotations

import sys

from repro.analysis.figures import paper_figures_7_to_11
from repro.metrics import Table
from repro.util.units import format_bytes, format_seconds


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.004
    print(f"running the 5-scheme x 10-session evaluation at scale {scale} "
          f"({scale * 35.1:.2f} GB per weekly session)...\n")
    figures = paper_figures_7_to_11(scale=scale)
    schemes = list(figures.fig7_cumulative_storage)

    fig7 = Table(["session"] + schemes,
                 title="Fig. 7 - cumulative cloud storage (paper-scale)")
    for i in range(len(figures.fig7_cumulative_storage[schemes[0]])):
        fig7.add_row([i + 1] + [
            format_bytes(figures.fig7_cumulative_storage[s][i],
                         decimal=True) for s in schemes])
    print(fig7.render(), "\n")

    fig8 = Table(["scheme", "mean DE (bytes saved/s)"],
                 title="Fig. 8 - deduplication efficiency")
    means = {s: sum(v) / len(v)
             for s, v in figures.fig8_efficiency.items()}
    for s in schemes:
        fig8.add_row([s, format_bytes(means[s], decimal=True) + "/s"])
    print(fig8.render())
    aa = means["AA-Dedupe"]
    print(f"  AA-Dedupe vs BackupPC x{aa / means['BackupPC']:.1f} "
          f"(paper ~2), vs SAM x{aa / means['SAM']:.1f} (paper ~5), "
          f"vs Avamar x{aa / means['Avamar']:.1f} (paper ~7)\n")

    fig9 = Table(["scheme", "mean window", "worst session"],
                 title="Fig. 9 - backup window (paper-scale)")
    for s in schemes:
        windows = figures.fig9_window[s]
        fig9.add_row([s, format_seconds(sum(windows) / len(windows)),
                      format_seconds(max(windows))])
    print(fig9.render(), "\n")

    fig10 = Table(["scheme", "storage $", "transfer $", "requests $",
                   "total $"],
                  title="Fig. 10 - monthly cloud cost (April-2011 S3)")
    for s in schemes:
        b = figures.fig10_cost[s]
        fig10.add_row([s, b.storage, b.transfer, b.requests, b.total])
    print(fig10.render(), "\n")

    fig11 = Table(["scheme", "total dedup energy (paper-scale kJ)"],
                  title="Fig. 11 - energy consumption")
    for s in schemes:
        total = sum(figures.fig11_energy[s])
        fig11.add_row([s, f"{total / 1000:.0f}"])
    print(fig11.render())


if __name__ == "__main__":
    main()
