#!/usr/bin/env python3
"""Secure deduplication: encrypted backups that still deduplicate.

Demonstrates the paper's future-work direction (Sec. VI) implemented in
:mod:`repro.secure`: convergent encryption gives confidentiality against
the cloud provider while preserving deduplication — even *across
clients that share no keys*.

Usage::

    python examples/secure_backup.py
"""

from __future__ import annotations

from repro import BackupClient, RestoreClient, aa_dedupe_config
from repro.cloud import InMemoryBackend
from repro.core import MemorySource
from repro.core import naming
from repro.errors import IntegrityError, RestoreError
from repro.util.units import KIB, MB, format_bytes
from repro.workloads import WorkloadGenerator, materialize_snapshot

ALICE_KEY = b"alice-master-secret-32-bytes!!!!"
BOB_KEY = b"bob-completely-different-secret!"


def main() -> None:
    snapshot = WorkloadGenerator(total_bytes=15 * MB, seed=55,
                                 max_mean_file_size=1 * MB
                                 ).initial_snapshot()
    files = materialize_snapshot(snapshot)
    cloud = InMemoryBackend()
    config = aa_dedupe_config(encrypt_chunks=True,
                              container_size=64 * KIB)

    print("== Alice backs up, encrypted ==")
    alice = BackupClient(cloud, config, master_key=ALICE_KEY)
    stats = alice.backup(MemorySource(files))
    print(f"  uploaded {format_bytes(stats.bytes_uploaded)} "
          f"in {stats.put_requests} PUTs (DR {stats.dedup_ratio:.2f})")

    # The provider sees only ciphertext.
    blob = b"".join(cloud._objects[k]
                    for k in cloud.list(naming.CONTAINER_PREFIX))
    leaked = sum(data[:64] in blob for data in files.values() if data)
    print(f"  plaintext prefixes visible to the provider: {leaked}")

    print("\n== Bob (different master key) backs up the same data ==")
    bob = BackupClient(cloud, config, master_key=BOB_KEY)
    bob.resume_from_cloud()
    stats = bob.backup(MemorySource(files), session_id=1)
    print(f"  new chunks uploaded: {stats.chunks_unique} "
          f"(convergent encryption ⇒ full cross-client dedup)")

    print("\n== restores ==")
    restored, _ = RestoreClient(cloud,
                                master_key=BOB_KEY).restore_to_memory(1)
    assert restored == files
    print("  Bob restores his session bit-exactly with his own key")

    try:
        RestoreClient(cloud).restore_to_memory(0)
    except RestoreError as exc:
        print(f"  restore without a key refused: {exc}")
    try:
        RestoreClient(cloud, master_key=b"wrong" * 8).restore_to_memory(0)
    except IntegrityError as exc:
        print(f"  restore with a wrong key detected: {exc}")


if __name__ == "__main__":
    main()
