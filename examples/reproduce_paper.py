#!/usr/bin/env python3
"""Reproduce every exhibit of the paper in one run, and export the data.

Order of appearance in the paper:

* Figs. 1–2  — file-size distribution of PC datasets;
* Table 1    — per-application SC/CDC redundancy;
* Obs. 4     — cross-application sharing;
* Figs. 3–4  — hash overheads and dedup throughputs (modelled);
* Figs. 7–11 — the five-scheme, ten-session evaluation.

Figure series are also exported as JSON/CSV for external plotting.

Usage::

    python examples/reproduce_paper.py [OUTPUT_DIR] [SCALE]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    cross_application_sharing,
    fig1_fig2_size_distribution,
    fig3_hash_overhead,
    fig4_throughputs,
    paper_figures_7_to_11,
    table1_redundancy,
)
from repro.analysis.export import write_figures
from repro.metrics import Table
from repro.util.units import MB, format_bytes


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "paper_output"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.004

    print("=== Figs. 1-2: file-size distribution ===")
    table = Table(["bucket", "files", "paper", "bytes", "paper "])
    for row in fig1_fig2_size_distribution(100_000):
        bucket = (f"< {format_bytes(row.upper_bound)}"
                  if row.upper_bound != float("inf") else ">= 1MiB")
        table.add_row([bucket, f"{row.count_share:.3f}",
                       f"{row.paper_count_share:.3f}",
                       f"{row.capacity_share:.3f}",
                       f"{row.paper_capacity_share:.3f}"])
    print(table.render())

    print("\n=== Table 1: per-application redundancy ===")
    table = Table(["app", "SC DR", "paper", "CDC DR", "paper "])
    for r in table1_redundancy(total_bytes=400 * MB):
        table.add_row([r.app, f"{r.sc_dr:.3f}", f"{r.paper_sc_dr:.3f}",
                       f"{r.cdc_dr:.3f}", f"{r.paper_cdc_dr:.3f}"])
    print(table.render())

    shared, total = cross_application_sharing(total_bytes=120 * MB)
    print(f"\n=== Observation 4 ===\n{shared} chunks shared across "
          f"applications of {total} unique (paper: one 16 KB chunk)")

    print("\n=== Fig. 3: hash execution time on 60MB (modelled) ===")
    times = fig3_hash_overhead()
    table = Table(["chunking", "Rabin", "MD5", "SHA-1"])
    for c in ("wfc", "sc"):
        table.add_row([c.upper()] + [f"{times[(c, h)]:.2f}s"
                                     for h in ("rabin12", "md5", "sha1")])
    print(table.render())

    print("\n=== Fig. 4: dedup throughput (modelled) ===")
    thr = fig4_throughputs()
    table = Table(["chunking", "Rabin", "MD5", "SHA-1"])
    for c in ("wfc", "sc", "cdc"):
        table.add_row([c.upper()] + [
            format_bytes(thr[(c, h)], decimal=True) + "/s"
            for h in ("rabin12", "md5", "sha1")])
    print(table.render())

    print(f"\n=== Figs. 7-11: running the evaluation at scale {scale} "
          "===")
    figures = paper_figures_7_to_11(scale=scale)
    means = {s: sum(v) / len(v)
             for s, v in figures.fig8_efficiency.items()}
    aa = means["AA-Dedupe"]
    print(f"Fig. 7 final storage: " + ", ".join(
        f"{s}={format_bytes(v[-1], decimal=True)}"
        for s, v in figures.fig7_cumulative_storage.items()))
    print(f"Fig. 8 DE multipliers: BackupPC x{aa / means['BackupPC']:.1f}"
          f" (paper 2), SAM x{aa / means['SAM']:.1f} (paper 5), "
          f"Avamar x{aa / means['Avamar']:.1f} (paper 7)")
    print(f"Fig. 10 totals: " + ", ".join(
        f"{s}=${b.total:.2f}" for s, b in figures.fig10_cost.items()))

    written = write_figures(figures, out_dir)
    print(f"\nexported {len(written)} data files to {out_dir}/")


if __name__ == "__main__":
    main()
