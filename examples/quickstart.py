#!/usr/bin/env python3
"""Quickstart: back up a directory with AA-Dedupe, then restore it.

Generates a small synthetic "home directory" (or uses one you pass on
the command line), backs it up twice to a directory-backed cloud store
— the second run demonstrates cross-session deduplication — and
restores the latest session with full integrity verification.

Usage::

    python examples/quickstart.py [SOURCE_DIR]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import BackupClient, DirectorySource, restore_session
from repro.cloud import LocalDirectoryBackend
from repro.util.units import MB, format_bytes
from repro.workloads import WorkloadGenerator, write_snapshot_to_directory


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="aa-dedupe-quickstart-"))
    if len(sys.argv) > 1:
        source_dir = Path(sys.argv[1]).expanduser()
    else:
        source_dir = workdir / "home"
        print(f"generating a synthetic 30 MB home directory at {source_dir}")
        generator = WorkloadGenerator(total_bytes=30 * MB, seed=42,
                                      max_mean_file_size=2 * MB)
        snapshot = generator.initial_snapshot()
        write_snapshot_to_directory(snapshot, source_dir)

    cloud_dir = workdir / "cloud"
    restored_dir = workdir / "restored"
    print(f"cloud store:   {cloud_dir}")

    # --- back up, twice ------------------------------------------------
    client = BackupClient(LocalDirectoryBackend(cloud_dir))
    for week in range(2):
        stats = client.backup(DirectorySource(source_dir))
        print(f"week {week}: scanned {format_bytes(stats.bytes_scanned)} "
              f"in {stats.files_total} files -> uploaded "
              f"{format_bytes(stats.bytes_uploaded)} "
              f"(dedup ratio {stats.dedup_ratio:.1f}, "
              f"{stats.put_requests} PUTs, "
              f"{stats.files_tiny} tiny files filtered)")

    # --- restore and verify ---------------------------------------------
    report = restore_session(client.cloud, 1, restored_dir)
    print(f"restored {report.files_restored} files "
          f"({format_bytes(report.bytes_restored)}), "
          f"{report.chunks_verified} chunk fingerprints verified, "
          f"{report.containers_fetched} containers fetched")

    # bit-exact check
    for path in sorted(p for p in source_dir.rglob("*") if p.is_file()):
        rel = path.relative_to(source_dir)
        assert (restored_dir / rel).read_bytes() == path.read_bytes(), rel
    print("bit-exact restore confirmed")
    print(f"(artifacts left under {workdir})")


if __name__ == "__main__":
    main()
